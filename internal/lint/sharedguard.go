package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// SharedGuard is the static race certifier: every mutable abstract
// object reachable from more than one goroutine context must be
// accessed under a consistent lockset, or only through channel
// transfer. It combines the points-to solution (pointsto.go) with the
// escape layer (escape.go):
//
//   - accesses are grouped per (object, field) cell after expanding
//     each access expression through the points-to sets;
//   - two accesses conflict when their functions' goroutine contexts
//     can run concurrently (distinct spawn sites, or one self-
//     concurrent "multi" site), BOTH sides write, and their must-held
//     locksets share no lock.
//
// Write-write only: read-write races are real but drown the signal
// under a flow-insensitive solver, and the certification claim is
// that no two goroutines mutate the same object unordered. Ownership
// shapes are exempt rather than reported: channel operations (they
// ARE the synchronization), sync/sync.atomic-typed cells, accesses
// that provably happen before the spawn or after its WaitGroup join,
// pairs where both sides reach the object only through their own
// function's parameters (the caller owns the discipline — viaParam),
// same-function pairs inside a sync.Once body, and the allocating
// function's own accesses while the object is still private. Each
// precision choice is recorded in DESIGN.md §16.
var SharedGuard = &Analyzer{
	Name: "sharedguard",
	Doc: "multi-goroutine-reachable objects must be accessed under a " +
		"consistent lockset or only via channel transfer",
	Run: runSharedGuard,
}

// sharedFinding is one whole-program diagnostic, filtered per package
// pass.
type sharedFinding struct {
	pos     token.Pos
	pkgPath string
	msg     string
}

func runSharedGuard(pass *Pass) error {
	prog := pass.Prog
	if prog == nil || prog.pointsTo == nil || prog.escape == nil {
		return nil
	}
	prog.sharedOnce.Do(func() { prog.sharedDiags = detectShared(prog) })
	for _, f := range prog.sharedDiags {
		if f.pkgPath == pass.Pkg.Path() {
			pass.Reportf(f.pos, "%s", f.msg)
		}
	}
	return nil
}

// sharedAccess is one grouped access with its precomputed facts.
type sharedAccess struct {
	fn    *Func
	pkg   *Package
	pos   token.Pos
	write bool
	ctx   ctxBits
	locks []string
	// viaParam: the access expression reaches the object through a
	// parameter (or receiver) of its own function. Instance identity is
	// then the call site's responsibility — the caller may hand every
	// invocation a distinct object the abstraction merged (the fleet's
	// per-unit runners). Pairs where both sides are parameter-mediated
	// are exempt; the publishing function's own direct accesses remain
	// checked. DESIGN.md §16 records the caller-ownership caveat.
	viaParam bool
}

func detectShared(prog *Program) []sharedFinding {
	pt := prog.pointsTo
	esc := prog.escape

	type cellKey struct {
		obj   int
		field string
	}
	groups := map[cellKey][]*sharedAccess{}
	order := []cellKey{}
	accCache := map[accCacheKey]*sharedAccess{}

	for _, a := range pt.accesses {
		if a.kind == ptChanOp {
			continue
		}
		if a.fn == nil {
			// Package-level initializers complete before main starts,
			// which happens before any goroutine spawns.
			continue
		}
		for _, o := range pt.Solver.PointsTo(a.node) {
			obj := pt.Solver.objects[o]
			if obj.Kind == "param" {
				// Summary objects stand for unknown caller state; the
				// callers' own objects are analyzed directly.
				continue
			}
			if syncTypeName(obj.Type) || syncTypeName(fieldTypeOf(obj.Type, a.field)) {
				continue
			}
			k := cellKey{obj: o, field: a.field}
			sa := sharedAccessOf(pt, esc, accCache, a)
			if len(groups[k]) == 0 {
				order = append(order, k)
			}
			groups[k] = append(groups[k], sa)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].obj != order[j].obj {
			return order[i].obj < order[j].obj
		}
		return order[i].field < order[j].field
	})

	var out []sharedFinding
	seen := map[string]bool{}
	for _, k := range order {
		accs := groups[k]
		if f := checkCell(prog, k.obj, k.field, accs); f != nil {
			if !seen[f.msg] {
				seen[f.msg] = true
				out = append(out, *f)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].pos != out[j].pos {
			return out[i].pos < out[j].pos
		}
		return out[i].msg < out[j].msg
	})
	return out
}

type accCacheKey struct {
	pos  token.Pos
	node int
	kind ptAccessKind
}

func sharedAccessOf(pt *PointsTo, esc *escapeInfo, cache map[accCacheKey]*sharedAccess, a ptAccess) *sharedAccess {
	k := accCacheKey{pos: a.pos, node: a.node, kind: a.kind}
	if sa, ok := cache[k]; ok {
		return sa
	}
	sa := &sharedAccess{
		fn:    a.fn,
		pkg:   a.pkg,
		pos:   a.pos,
		write: a.kind == ptWrite,
		ctx:   esc.contextOf(a.fn),
		locks: esc.locksHeldAt(a.fn, a.pos),
	}
	for _, o := range pt.Solver.PointsTo(a.node) {
		obj := pt.Solver.objects[o]
		if obj.Kind == "param" && (obj.Fn == a.fn || enclosesLexically(obj.Fn, a.fn)) {
			sa.viaParam = true
			break
		}
	}
	cache[k] = sa
	return sa
}

// checkCell examines one (object, field) cell's accesses and returns
// at most one finding.
func checkCell(prog *Program, objIdx int, field string, accs []*sharedAccess) *sharedFinding {
	esc := prog.escape
	obj := prog.pointsTo.Solver.objects[objIdx]
	if objIdx >= len(esc.sharedObj) || !esc.sharedObj[objIdx] {
		return nil // private to one goroutine: cannot race
	}

	// Fast path: all accesses on one non-multi context → sequential.
	union := newCtxBits(len(esc.sites) + 1)
	anyWrite := false
	for _, a := range accs {
		union.orFrom(a.ctx)
		anyWrite = anyWrite || a.write
	}
	if !anyWrite {
		return nil
	}
	if union.count() <= 1 && !hasMultiBit(esc, union) {
		return nil
	}

	sort.Slice(accs, func(i, j int) bool { return accs[i].pos < accs[j].pos })
	for i, a1 := range accs {
		for _, a2 := range accs[i:] {
			// Only write-write conflicts clear the confidence bar: a
			// read racing a write is overwhelmingly the channel-handoff
			// idiom (requester reads a response object after <-done) or
			// a context-merging artifact, and flagging those would bury
			// the real findings. DESIGN.md §16 records the choice.
			if !a1.write || !a2.write {
				continue
			}
			// Caller-ownership: both sides reach the object through
			// their own function's parameters — each invocation may have
			// been handed a distinct instance (see sharedAccess.viaParam).
			if a1.viaParam && a2.viaParam {
				continue
			}
			// A function run under sync.Once.Do executes at most once
			// per Once value: two accesses inside it cannot overlap.
			if a1.fn == a2.fn && esc.onceFns[a1.fn] {
				continue
			}
			// Ownership: the points-to abstraction merges every
			// invocation of the allocating function into one abstract
			// object, but each invocation really owns a fresh instance.
			// When both accesses sit inside that same function, they see
			// their own copy; only accesses from OTHER functions (the
			// object escaped through a closure, channel, or store) can
			// race against it.
			if obj.Fn != nil && obj.Fn == a1.fn && obj.Fn == a2.fn {
				continue
			}
			// Allocator-context ownership: when the allocating function
			// itself runs in every context the accesses run in, each
			// context allocated its own instance (worker-side
			// allocations reached through a shared collection); the
			// abstraction merged them, but no single instance is
			// reachable from two goroutines. Instance sharing that
			// matters allocates on one side and publishes to more
			// contexts than the allocator runs in.
			if obj.Fn != nil {
				alloc := esc.contextOf(obj.Fn)
				if ctxContains(alloc, a1.ctx) && ctxContains(alloc, a2.ctx) {
					continue
				}
			}
			if !concurrentPair(esc, a1, a2) {
				continue
			}
			if locksIntersect(a1.locks, a2.locks) {
				continue
			}
			return &sharedFinding{
				pos:     a1.pos,
				pkgPath: a1.pkg.Path,
				msg:     cellMessage(prog, obj, field, a1, a2),
			}
		}
	}
	return nil
}

// enclosesLexically reports whether inner is a closure declared inside
// outer's body: a capture of outer's parameter keeps caller-ownership
// semantics inside the closure (the deferred recover block writing a
// handed-in runner's fields is the canonical shape).
func enclosesLexically(outer, inner *Func) bool {
	if outer == nil || inner == nil || inner.Lit == nil || outer.Body == nil {
		return false
	}
	if outer.Pkg != inner.Pkg {
		return false
	}
	return outer.Body.Pos() <= inner.Lit.Pos() && inner.Lit.End() <= outer.Body.End()
}

// ctxContains reports whether every context bit of b is set in a.
func ctxContains(a, b ctxBits) bool {
	for i, w := range b {
		if i >= len(a) {
			if w != 0 {
				return false
			}
			continue
		}
		if w&^a[i] != 0 {
			return false
		}
	}
	return true
}

func hasMultiBit(esc *escapeInfo, c ctxBits) bool {
	for _, s := range esc.sites {
		if s.multi && c.has(s.index+1) {
			return true
		}
	}
	return false
}

// concurrentPair reports whether the two accesses can execute on
// concurrently running goroutines.
func concurrentPair(esc *escapeInfo, a1, a2 *sharedAccess) bool {
	u := a1.ctx.union(a2.ctx)
	n := u.count()
	if n == 0 {
		return false
	}
	if n == 1 {
		// Same single context for both: concurrent only when it is a
		// self-concurrent (multi) spawn site — two instances of the
		// same goroutine body.
		return hasMultiBit(esc, u)
	}
	// Spawner-side happens-before: if one side's contexts are entirely
	// goroutines the other side's function spawns, and at the other
	// side's position every one of those spawns is not yet launched or
	// already joined, the accesses are ordered, not concurrent.
	if spawnOrdered(esc, a1, a2) || spawnOrdered(esc, a2, a1) {
		return false
	}
	// Setup/teardown convention: an access that only ever runs on the
	// main goroutine, in a function that is not itself the spawner of
	// the other side, is assumed ordered against spawned work (the
	// repo's pattern is build → spawn → Wait → read; the spawner's own
	// body is the place overlap happens and is checked precisely above
	// via the spawn-status lattice). DESIGN.md §16 records the
	// unsoundness: a main-context helper called between go and Wait is
	// not seen.
	if mainSetupOrdered(esc, a1, a2) || mainSetupOrdered(esc, a2, a1) {
		return false
	}
	return true
}

// mainSetupOrdered reports whether m runs only on main, w runs only on
// spawned goroutines, and m's function spawns none of w's live sites.
func mainSetupOrdered(esc *escapeInfo, m, w *sharedAccess) bool {
	if !(m.ctx.count() == 1 && m.ctx.has(0)) {
		return false
	}
	if w.ctx.has(0) || w.ctx.count() == 0 {
		return false
	}
	for _, s := range esc.sites {
		if !w.ctx.has(s.index + 1) {
			continue
		}
		if s.fn == m.fn && esc.statusAt(s, m.pos) == spawnLive {
			return false // m overlaps a goroutine it spawned itself
		}
	}
	return true
}

// spawnOrdered reports whether every context of spawnee is a spawn
// site of spawner.fn whose goroutine provably is not running at
// spawner.pos.
func spawnOrdered(esc *escapeInfo, spawner, spawnee *sharedAccess) bool {
	if spawner.fn == nil {
		return false
	}
	if spawnee.ctx.count() == 0 {
		return false
	}
	if spawnee.ctx.has(0) {
		return false // spawnee also runs on main: never fully ordered
	}
	for _, s := range esc.sites {
		if !spawnee.ctx.has(s.index + 1) {
			continue
		}
		if s.fn != spawner.fn {
			return false
		}
		if esc.statusAt(s, spawner.pos) == spawnLive {
			return false
		}
	}
	return true
}

// locksIntersect reports whether the two sorted locksets share a lock
// (the RWMutex read side counts as its base lock: cross-mode pairs are
// treated as consistent discipline rather than racy, a documented
// precision choice).
func locksIntersect(a, b []string) bool {
	for _, x := range a {
		bx := strings.TrimSuffix(x, "#r")
		for _, y := range b {
			if strings.TrimSuffix(y, "#r") == bx {
				return true
			}
		}
	}
	return false
}

func cellMessage(prog *Program, obj *PTObject, field string, a1, a2 *sharedAccess) string {
	cell := describeCell(obj, field)
	return fmt.Sprintf("%s is reachable from multiple goroutines but accessed without a consistent lockset: %s and %s; guard both with one mutex or hand the object over a channel",
		cell, describeAccess(prog, a1), describeAccess(prog, a2))
}

func describeCell(obj *PTObject, field string) string {
	what := obj.Kind
	if obj.Var != nil {
		what = "variable " + obj.Var.Name()
	} else if obj.Type != nil {
		what = obj.Kind + " of " + obj.Type.String()
	}
	switch field {
	case ptElemField:
		return what
	case ptIndexField:
		return "elements of " + what
	default:
		return "field " + field + " of " + what
	}
}

func describeAccess(prog *Program, a *sharedAccess) string {
	kind := "read"
	if a.write {
		kind = "write"
	}
	p := prog.Fset.Position(a.pos)
	where := fmt.Sprintf("%s:%d", p.Filename, p.Line)
	if len(a.locks) == 0 {
		return fmt.Sprintf("unlocked %s at %s", kind, where)
	}
	return fmt.Sprintf("%s at %s (holding %s)", kind, where, strings.Join(a.locks, ", "))
}
