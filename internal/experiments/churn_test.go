package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"mba/internal/workload"
)

// TestChurnSweep runs the churn harness at test scale: every rate ×
// algorithm cell must complete without error or audit violation, the
// rate-0 control must show zero churn observations, and the churning
// rows must show healing work keeping the walks alive.
func TestChurnSweep(t *testing.T) {
	opts := Options{
		Scale:  workload.Test,
		Seed:   5,
		Trials: 1,
		// Churn observations need long walks: the walk must cache a
		// neighbor list, have the listed user vanish, then step to it.
		// Small budgets keep that window too short to ever hit.
		Budget: 9000,
	}
	tab, err := Churn(opts)
	if err != nil {
		t.Fatal(err)
	}
	if tab.ID != "churn" {
		t.Errorf("table ID = %q", tab.ID)
	}
	wantRows := len(churnRates) * 3 // 3 algorithms per rate
	if len(tab.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), wantRows)
	}
	col := map[string]int{}
	for i, c := range tab.Columns {
		col[c] = i
	}
	for _, key := range []string{"Rate", "Algo", "RelErr", "Cost", "Healed", "Vanished", "Pruned", "Degraded", "Audit"} {
		if _, ok := col[key]; !ok {
			t.Fatalf("missing column %q", key)
		}
	}

	cell := func(row []string, name string) string { return row[col[name]] }
	atoi := func(s string) int {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("non-numeric cell %q", s)
		}
		return n
	}
	churnWork := 0
	for _, row := range tab.Rows {
		rate, algo := cell(row, "Rate"), cell(row, "Algo")
		if c := atoi(cell(row, "Cost")); c <= 0 || c > opts.Budget {
			t.Errorf("%s/%s: cost %d outside (0, %d]", rate, algo, c, opts.Budget)
		}
		if !strings.HasPrefix(cell(row, "Audit"), "ok(") {
			t.Errorf("%s/%s: audit cell %q", rate, algo, cell(row, "Audit"))
		}
		vanished := atoi(cell(row, "Vanished"))
		if rate == "0" {
			if healed := atoi(cell(row, "Healed")); healed != 0 || vanished != 0 {
				t.Errorf("frozen control observed churn: healed=%d vanished=%d", healed, vanished)
			}
			if !strings.HasPrefix(cell(row, "Degraded"), "0/") {
				t.Errorf("frozen control degraded: %s", cell(row, "Degraded"))
			}
		} else {
			churnWork += atoi(cell(row, "Healed")) + vanished
		}
	}
	if churnWork == 0 {
		t.Error("no churning rate recorded any heal events or vanished users")
	}
}

// TestChurnSweepDeterministic: the emitted CSV is byte-identical across
// reruns with the same options (the acceptance bar for `mba-bench -only
// churn`).
func TestChurnSweepDeterministic(t *testing.T) {
	opts := Options{
		Scale:  workload.Test,
		Seed:   7,
		Trials: 1,
		Budget: 2000,
	}
	csv := func() []byte {
		tab, err := Churn(opts)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := csv(), csv()
	if !bytes.Equal(a, b) {
		t.Fatalf("churn CSV not deterministic:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}
