package core

import (
	"errors"
	"math"
	"sync"
	"testing"

	"mba/internal/api"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
)

var (
	fixtureOnce sync.Once
	fixture     *platform.Platform
	fixtureErr  error
)

// testPlatform builds (once) a moderately sized platform whose privacy
// cascade has a few thousand adopters — big enough that sampling beats
// crawling, small enough for fast tests.
func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	fixtureOnce.Do(func() {
		fixture, fixtureErr = platform.New(platform.Config{
			Seed:                  99,
			NumUsers:              12000,
			NumCommunities:        50,
			IntraEdgesPerUser:     7,
			InterEdgesPerUser:     1.2,
			HorizonDays:           180,
			TimelineCap:           3200,
			BackgroundPostsPerDay: 1.0,
			GenderKnownProb:       0.6,
			Keywords: []platform.KeywordConfig{
				{Name: "privacy", SeedsPerDay: 4.0,
					AffinityFrac: 0.15, InterestHigh: 0.8, AdoptProb: 0.3,
					RepeatMentionMean: 3,
					Spikes:            []platform.Spike{{Day: 90, DurationDays: 8, Multiplier: 5}}},
			},
		})
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

func newSession(t *testing.T, p *platform.Platform, q query.Query, budget int) *Session {
	t.Helper()
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, err := NewSession(api.NewClient(srv, budget), q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSessionValidates(t *testing.T) {
	p := testPlatform(t)
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	if _, err := NewSession(api.NewClient(srv, 0), query.Query{}, 0); err == nil {
		t.Error("invalid query accepted")
	}
	s, err := NewSession(api.NewClient(srv, 0), query.CountQuery("privacy"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Interval != model.Day {
		t.Errorf("default interval = %d, want 1 day", s.Interval)
	}
}

func TestGraphViewString(t *testing.T) {
	if SocialView.String() != "social" || TermView.String() != "term-induced" || LevelView.String() != "level-by-level" {
		t.Error("view names wrong")
	}
	if GraphView(9).String() == "" {
		t.Error("unknown view should still render")
	}
}

func TestSeedsAndQualification(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	if seeds.Size() == 0 {
		t.Fatal("no seeds")
	}
	for _, u := range seeds.Hits[:min(5, len(seeds.Hits))] {
		if !seeds.Contains(u) {
			t.Error("seed set membership broken")
		}
		ok, err := s.Qualified(u)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("search hit %d not qualified", u)
		}
	}
	if seeds.Contains(-5) {
		t.Error("phantom seed")
	}
}

func TestSeedsUnknownKeyword(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("definitely-not-simulated"), 0)
	if _, err := s.Seeds(); !errors.Is(err, ErrNoSeeds) {
		t.Errorf("want ErrNoSeeds, got %v", err)
	}
}

func TestNeighborOraclesConsistent(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}
	u := seeds.Hits[0]
	term, err := s.TermNeighbors(u)
	if err != nil {
		t.Fatal(err)
	}
	lvl, err := s.LevelNeighbors(u)
	if err != nil {
		t.Fatal(err)
	}
	ups, err := s.UpNeighbors(u)
	if err != nil {
		t.Fatal(err)
	}
	downs, err := s.DownNeighbors(u)
	if err != nil {
		t.Fatal(err)
	}
	if len(lvl) > len(term) {
		t.Error("level neighbors exceed term neighbors")
	}
	if len(ups)+len(downs) != len(lvl) {
		t.Errorf("up(%d)+down(%d) != level(%d)", len(ups), len(downs), len(lvl))
	}
	myLvl, _ := s.Level(u)
	for _, v := range ups {
		if l, _ := s.Level(v); l >= myLvl {
			t.Error("up neighbor not strictly earlier")
		}
	}
	for _, v := range downs {
		if l, _ := s.Level(v); l <= myLvl {
			t.Error("down neighbor not strictly later")
		}
	}
	// Every term neighbor must actually be qualified and socially
	// adjacent.
	for _, v := range term {
		ok, _ := s.Qualified(v)
		if !ok {
			t.Error("term neighbor not qualified")
		}
		if !p.Social.HasEdge(u, v) {
			t.Error("term neighbor not a social neighbor")
		}
	}
}

func TestLevelErrorsForOutsiders(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	// Find a non-adopter.
	c := p.Cascade("privacy")
	var outsider int64 = -1
	for id := 0; id < p.NumUsers(); id++ {
		if _, ok := c.First[int64(id)]; !ok {
			outsider = int64(id)
			break
		}
	}
	if outsider < 0 {
		t.Skip("everyone adopted")
	}
	if _, err := s.Level(outsider); err == nil {
		t.Error("Level of outsider should error")
	}
	if ns, err := s.TermNeighbors(outsider); err != nil || ns != nil {
		t.Errorf("outsider term neighbors = %v, %v; want nil, nil", ns, err)
	}
}

func TestSetIntervalInvalidatesLevels(t *testing.T) {
	p := testPlatform(t)
	s := newSession(t, p, query.CountQuery("privacy"), 0)
	seeds, _ := s.Seeds()
	u := seeds.Hits[0]
	lvlDay, err := s.Level(u)
	if err != nil {
		t.Fatal(err)
	}
	cost := s.Client.Cost()
	s.SetInterval(model.Week)
	lvlWeek, err := s.Level(u)
	if err != nil {
		t.Fatal(err)
	}
	if s.Client.Cost() != cost {
		t.Error("re-levelling after SetInterval cost API calls")
	}
	if lvlWeek > lvlDay {
		t.Errorf("weekly level %d should not exceed daily level %d", lvlWeek, lvlDay)
	}
	s.SetInterval(0) // no-op
	if s.Interval != model.Week {
		t.Error("SetInterval(0) should be a no-op")
	}
}

func TestRunSRWAvgConverges(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	truth, err := p.GroundTruth(q)
	if err != nil {
		t.Fatal(err)
	}
	s := newSession(t, p, q, 60000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatal("no estimate")
	}
	re := stats.RelativeError(res.Estimate, truth)
	t.Logf("MA-SRW AVG: est=%.1f truth=%.1f relerr=%.3f cost=%d samples=%d",
		res.Estimate, truth, re, res.Cost, res.Samples)
	if re > 0.25 {
		t.Errorf("MA-SRW AVG relative error %.3f too high", re)
	}
	if res.Cost == 0 || res.Samples == 0 {
		t.Error("cost/samples not recorded")
	}
	if len(res.Trajectory) == 0 {
		t.Error("no trajectory emitted")
	}
	for i := 1; i < len(res.Trajectory); i++ {
		if res.Trajectory[i].Cost < res.Trajectory[i-1].Cost {
			t.Error("trajectory cost not monotone")
		}
	}
}

func TestRunSRWCountConverges(t *testing.T) {
	p := testPlatform(t)
	q := query.CountQuery("privacy")
	truth, _ := p.GroundTruth(q)
	s := newSession(t, p, q, 80000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatal("no COUNT estimate (no collisions?)")
	}
	re := stats.RelativeError(res.Estimate, truth)
	t.Logf("MA-SRW COUNT: est=%.0f truth=%.0f relerr=%.3f cost=%d", res.Estimate, truth, re, res.Cost)
	if re > 0.5 {
		t.Errorf("MA-SRW COUNT relative error %.3f too high", re)
	}
}

// MA-TARW integration tests run at T = 2 weeks. The fixture's term
// subgraph is tiny (~2.4k nodes, level width ~180), so the level DAG
// mixes poorly and the Hansen–Hurwitz visit probabilities are far more
// skewed than on bench-scale platforms; the tolerances below reflect
// that (the benchmark harness reproduces the paper's accuracy at
// realistic scale).
func TestRunTARWAvgConverges(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	truth, _ := p.GroundTruth(q)
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, _ := NewSession(api.NewClient(srv, 60000), q, 2*7*24)
	res, err := RunTARW(s, TARWOptions{Seed: 3, PEstimates: 20, AllowCrossLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatal("no estimate")
	}
	re := stats.RelativeError(res.Estimate, truth)
	t.Logf("MA-TARW AVG: est=%.1f truth=%.1f relerr=%.3f cost=%d walks=%d zero=%d",
		res.Estimate, truth, re, res.Cost, res.Samples, res.ZeroProbPaths)
	if re > 0.25 {
		t.Errorf("MA-TARW AVG relative error %.3f too high", re)
	}
}

func TestRunTARWCountConverges(t *testing.T) {
	p := testPlatform(t)
	q := query.CountQuery("privacy")
	truth, _ := p.GroundTruth(q)
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, _ := NewSession(api.NewClient(srv, 60000), q, 2*7*24)
	res, err := RunTARW(s, TARWOptions{Seed: 4, PEstimates: 20, AllowCrossLevel: true, WeightClip: 500})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatal("no estimate")
	}
	re := stats.RelativeError(res.Estimate, truth)
	t.Logf("MA-TARW COUNT: est=%.0f truth=%.0f relerr=%.3f cost=%d walks=%d zero=%d",
		res.Estimate, truth, re, res.Cost, res.Samples, res.ZeroProbPaths)
	if re > 0.6 {
		t.Errorf("MA-TARW COUNT relative error %.3f too high", re)
	}
}

func TestRunSRWBudgetRespected(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 2000)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 2000 {
		t.Errorf("cost %d exceeds budget", res.Cost)
	}
}

func TestRunTARWBudgetRespected(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 2000)
	res, err := RunTARW(s, TARWOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 2000 {
		t.Errorf("cost %d exceeds budget", res.Cost)
	}
}

func TestRunSRWMaxSteps(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 0)
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 7, MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 100 {
		t.Errorf("samples = %d, want 100", res.Samples)
	}
}

func TestRunTARWMaxWalks(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 0)
	res, err := RunTARW(s, TARWOptions{Seed: 8, MaxWalks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 10 {
		t.Errorf("walks = %d, want 10", res.Samples)
	}
}

func TestRunMRIsCountCapable(t *testing.T) {
	p := testPlatform(t)
	q := query.CountQuery("privacy")
	truth, _ := p.GroundTruth(q)
	s := newSession(t, p, q, 80000)
	res, err := RunMR(s, SRWOptions{View: LevelView, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Estimate) {
		t.Fatal("no M&R estimate")
	}
	re := stats.RelativeError(res.Estimate, truth)
	t.Logf("M&R COUNT: est=%.0f truth=%.0f relerr=%.3f cost=%d", res.Estimate, truth, re, res.Cost)
}

func TestSelectIntervalRanksCandidates(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	s := newSession(t, p, q, 0)
	best, pilots, err := SelectInterval(s, nil, 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pilots) != 7 {
		t.Fatalf("pilot results = %d, want 7", len(pilots))
	}
	if best <= 0 {
		t.Error("no interval selected")
	}
	if s.Interval != best {
		t.Error("session interval not updated")
	}
	var found bool
	for _, pr := range pilots {
		if pr.Interval == best {
			found = true
			for _, other := range pilots {
				if other.Score < pr.Score-1e-12 {
					t.Errorf("selected interval %v (score=%g) beaten by %v (score=%g)",
						pr.Interval, pr.Score, other.Interval, other.Score)
				}
			}
		}
	}
	if !found {
		t.Error("selected interval missing from pilot results")
	}
	for _, pr := range pilots {
		t.Logf("T=%v h=%d d=%.2f phi=%g score=%.3f", pr.Interval, pr.H, pr.D, pr.Conductance, pr.Score)
	}
}

func TestRunTARWWithIntervalSelection(t *testing.T) {
	// Median over three seeds: single runs on the tiny fixture are
	// noisy (the level DAG has ~150 nodes per level, so per-walk
	// Hansen–Hurwitz weights are skewed).
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	truth, _ := p.GroundTruth(q)
	var errs []float64
	for seed := int64(11); seed < 14; seed++ {
		s := newSession(t, p, q, 60000)
		res, err := RunTARW(s, TARWOptions{Seed: seed, SelectInterval: true, AllowCrossLevel: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.IsNaN(res.Estimate) {
			t.Fatal("no estimate")
		}
		re := stats.RelativeError(res.Estimate, truth)
		errs = append(errs, re)
		t.Logf("MA-TARW(auto-T) seed=%d AVG: relerr=%.3f cost=%d interval=%d", seed, re, res.Cost, s.Interval)
	}
	// This test checks the selection mechanics, not estimate quality:
	// the fixture's subgraph (~2.4k nodes) is far below the scale the
	// estimator targets (the bench harness validates quality). The
	// bound here is a sanity check against gross breakage only.
	med, _ := stats.Median(errs)
	if med > 1.0 {
		t.Errorf("median relative error %.3f is beyond sanity", med)
	}
}

func TestEstimatorsTolerateFaultsAndPrivateUsers(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	srv := api.NewServer(p, api.Twitter(), api.Faults{PrivateProb: 0.05, TransientProb: 0.02, Seed: 12})
	s, err := NewSession(api.NewClient(srv, 30000), q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 13})
	if err != nil {
		t.Fatalf("SRW with faults errored: %v", err)
	}
	if math.IsNaN(res.Estimate) {
		t.Error("SRW with faults produced no estimate")
	}
	srv2 := api.NewServer(p, api.Twitter(), api.Faults{PrivateProb: 0.05, TransientProb: 0.02, Seed: 14})
	s2, _ := NewSession(api.NewClient(srv2, 30000), q, model.Day)
	res2, err := RunTARW(s2, TARWOptions{Seed: 15})
	if err != nil {
		t.Fatalf("TARW with faults errored: %v", err)
	}
	if math.IsNaN(res2.Estimate) {
		t.Error("TARW with faults produced no estimate")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
