package lint_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"testing"

	"mba/internal/lint"
)

// renderRun loads the violation-rich fixture packages with a fresh
// loader, runs the full analyzer suite, and renders every diagnostic
// to one canonical byte stream (the same shape mba-lint -json emits:
// one JSON object per line).
func renderRun(t *testing.T) []byte {
	t.Helper()
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	targets := []string{
		"ctxflow/core", "errsentinel", "lockorder",
		"budgetflow/core", "budgetflow/fleet", "recursion",
		"dettaint", "unlockpath", "budgetpath",
	}
	var pkgs []*lint.Package
	for _, p := range targets {
		pkg, err := loader.Load(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	prog := lint.NewProgram(loader.Loaded())
	var buf bytes.Buffer
	for _, pkg := range pkgs {
		for _, a := range lint.Interprocedural() {
			diags, err := lint.RunAnalyzer(a, pkg, prog)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				line, err := json.Marshal(map[string]any{
					"analyzer": d.Analyzer,
					"file":     filepath.Base(d.Pos.Filename),
					"line":     d.Pos.Line,
					"column":   d.Pos.Column,
					"message":  d.Message,
				})
				if err != nil {
					t.Fatal(err)
				}
				buf.Write(line)
				buf.WriteByte('\n')
			}
		}
	}
	return buf.Bytes()
}

// TestTwoRunByteIdentical rebuilds the whole program from scratch and
// re-runs every interprocedural analyzer; the rendered diagnostics of
// the two runs must be byte-identical. This is the determinism gate:
// map-iteration order must never leak into output.
func TestTwoRunByteIdentical(t *testing.T) {
	run1 := renderRun(t)
	run2 := renderRun(t)
	if len(run1) == 0 {
		t.Fatal("fixture run produced no diagnostics; the determinism check is vacuous")
	}
	if !bytes.Equal(run1, run2) {
		t.Errorf("two identical runs rendered different bytes:\nrun1:\n%s\nrun2:\n%s", run1, run2)
	}
}

// TestTwoRunSARIFByteIdentical renders the two independent fixture
// runs as SARIF logs: the full artifact CI uploads must also be
// byte-identical, not just the per-diagnostic lines.
func TestTwoRunSARIFByteIdentical(t *testing.T) {
	render := func() []byte {
		t.Helper()
		loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
		targets := []string{"dettaint", "unlockpath", "budgetpath", "errsentinel"}
		var pkgs []*lint.Package
		for _, p := range targets {
			pkg, err := loader.Load(p)
			if err != nil {
				t.Fatalf("loading %s: %v", p, err)
			}
			pkgs = append(pkgs, pkg)
		}
		diags, err := lint.RunAll(lint.Interprocedural(), pkgs)
		if err != nil {
			t.Fatal(err)
		}
		data, err := lint.SARIF(diags, lint.Interprocedural(), "")
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	run1 := render()
	run2 := render()
	if len(run1) == 0 {
		t.Fatal("SARIF run rendered no bytes")
	}
	if !bytes.Equal(run1, run2) {
		t.Errorf("two identical runs rendered different SARIF:\nrun1:\n%s\nrun2:\n%s", run1, run2)
	}
}

// TestDiagnosticOrderStable: the suite's sort is total, so diagnostics
// come out ordered by file, line, column, analyzer even when analyzers
// emit them in another order.
func TestDiagnosticOrderStable(t *testing.T) {
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	pkg, err := loader.Load("errsentinel")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunAll(lint.All(), []*lint.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		ka := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", a.Pos.Filename, a.Pos.Line, a.Pos.Column, a.Analyzer)
		kb := fmt.Sprintf("%s\x00%08d\x00%08d\x00%s", b.Pos.Filename, b.Pos.Line, b.Pos.Column, b.Analyzer)
		if ka > kb {
			t.Errorf("diagnostics out of order at %d: %v then %v", i, a, b)
		}
	}
}
