// Package recursion gives the summary fixpoint a mutually recursive
// SCC with a charged call inside it: even and odd must both converge
// to IncursCost without the propagation looping forever.
package recursion

import "api"

func even(c *api.Client, n int) error {
	if n == 0 {
		_, err := c.Search("x")
		return err
	}
	return odd(c, n-1)
}

func odd(c *api.Client, n int) error {
	if n == 0 {
		return nil
	}
	return even(c, n-1)
}

// self is directly self-recursive.
func self(c *api.Client, n int) error {
	if n == 0 {
		_, err := c.Timeline(1)
		return err
	}
	return self(c, n-1)
}
