package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// This file emits SARIF 2.1.0 (Static Analysis Results Interchange
// Format), the schema CI annotation services ingest. Only the required
// surface is modeled: tool.driver with one reportingDescriptor per
// analyzer, and one result per diagnostic with ruleId, level, message,
// and a physical location. Output is deterministic: rules follow the
// analyzer order handed in, results follow the (already sorted)
// diagnostic order, and encoding/json emits struct fields in
// declaration order.

const (
	sarifSchema  = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name    string      `json:"name"`
	Version string      `json:"version"`
	Rules   []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string    `json:"id"`
	ShortDescription sarifText `json:"shortDescription"`
	// HelpURI points at the rule's documentation. The repo has no
	// canonical remote, so this is a relative URI into the repo's own
	// docs — stable across clones and byte-identical across runs.
	HelpURI string `json:"helpUri,omitempty"`
}

// ruleHelpURI renders the documentation URI of one analyzer rule.
func ruleHelpURI(name string) string {
	return "DESIGN.md#lint-" + name
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// SARIF renders diagnostics as a SARIF 2.1.0 log. analyzers populate
// the rule table (every diagnostic's analyzer should be among them);
// file URIs are made relative to baseDir when possible.
func SARIF(diags []Diagnostic, analyzers []*Analyzer, baseDir string) ([]byte, error) {
	driver := sarifDriver{Name: "mba-lint", Version: "1"}
	ruleIndex := map[string]int{}
	for _, a := range analyzers {
		ruleIndex[a.Name] = len(driver.Rules)
		driver.Rules = append(driver.Rules, sarifRule{
			ID:               a.Name,
			ShortDescription: sarifText{Text: a.Doc},
			HelpURI:          ruleHelpURI(a.Name),
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Analyzer]
		if !ok {
			idx = len(driver.Rules)
			ruleIndex[d.Analyzer] = idx
			driver.Rules = append(driver.Rules, sarifRule{
				ID:               d.Analyzer,
				ShortDescription: sarifText{Text: d.Analyzer},
				HelpURI:          ruleHelpURI(d.Analyzer),
			})
		}
		results = append(results, sarifResult{
			RuleID:    d.Analyzer,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifText{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: relURI(baseDir, d.Pos.Filename)},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs:    []sarifRun{{Tool: sarifTool{Driver: driver}, Results: results}},
	}
	data, err := json.MarshalIndent(log, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// relURI renders a filename as a forward-slash URI relative to baseDir
// when the file lies under it.
func relURI(baseDir, name string) string {
	if baseDir != "" {
		if rel, err := filepath.Rel(baseDir, name); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(name)
}
