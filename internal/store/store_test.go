package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"strings"
	"testing"

	"mba/internal/core"
)

// testSnap builds a small distinguishable snapshot; i round-trips
// through Restarts and the walk's spent cost.
func testSnap(i int) *Snapshot {
	ws := core.CheckpointState{Algo: "MA-SRW", PriorCost: 100 * i}
	return &Snapshot{
		Plan:     PlanKey{Algo: "MA-SRW", Preset: "twitter", Query: "AVG(followers) WHERE privacy", Seed: 7},
		Restarts: i,
		Walk:     &ws,
	}
}

// withVersion restamps an encoded snapshot with a different schema
// version, recomputing the checksum so the file is structurally intact
// — exactly what a build from another era would have written.
func withVersion(data []byte, v uint32) []byte {
	out := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(out[8:12], v)
	sum := checksum(out)
	copy(out[28:headerLen], sum[:])
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	snap := testSnap(3)
	snap.RecoveredCost = 1234
	// NaN estimate must survive: JSON cannot carry NaN, the bits can.
	snap.Final = &RunSummary{EstimateBits: math.Float64bits(math.NaN()), Cost: 42, Samples: 7}
	data, err := EncodeSnapshot(snap, 9)
	if err != nil {
		t.Fatal(err)
	}
	got, seq, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 9 {
		t.Errorf("seq = %d, want 9", seq)
	}
	if got.Restarts != 3 || got.RecoveredCost != 1234 {
		t.Errorf("bookkeeping lost: %+v", got)
	}
	if got.Walk == nil || got.Walk.PriorCost != 300 {
		t.Errorf("walk state lost: %+v", got.Walk)
	}
	if got.Final == nil || got.Final.Cost != 42 || !math.IsNaN(got.Final.Estimate()) {
		t.Errorf("final summary lost: %+v", got.Final)
	}
	if got.Plan.Check(snap.Plan) != nil {
		t.Errorf("plan drifted through encode/decode: %+v", got.Plan)
	}
}

func TestSaveLoadRotation(t *testing.T) {
	mem := NewMemFS()
	st, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := st.Save(testSnap(i)); err != nil {
			t.Fatal(err)
		}
		snap, err := st.Load()
		if err != nil {
			t.Fatal(err)
		}
		if snap.Restarts != i {
			t.Fatalf("after save %d, Load returned generation %d", i, snap.Restarts)
		}
	}
	// Both slots are populated (A/B rotation), no temp files linger.
	for _, name := range []string{"ck.a", "ck.b"} {
		if _, err := mem.ReadFile(name); err != nil {
			t.Errorf("slot %s missing after three saves: %v", name, err)
		}
		if _, err := mem.ReadFile(name + ".tmp"); !errors.Is(err, fs.ErrNotExist) {
			t.Errorf("temp file %s.tmp lingers after rename", name)
		}
	}
	if st.Stats().Saves != 3 {
		t.Errorf("Saves = %d, want 3", st.Stats().Saves)
	}

	// A reopened store (simulated restart) resumes the rotation where
	// the last instance left it instead of restarting the sequence.
	st2, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(testSnap(4)); err != nil {
		t.Fatal(err)
	}
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Restarts != 4 {
		t.Fatalf("reopened store loaded generation %d, want 4", snap.Restarts)
	}
	// Generation 4 (even seq) landed in .b; .a still holds generation 3
	// untouched — the write never endangered the previous generation.
	dataB, _ := mem.ReadFile("ck.b")
	if _, seq, err := DecodeSnapshot(dataB); err != nil || seq != 4 {
		t.Errorf("slot .b: seq=%d err=%v, want seq 4", seq, err)
	}
	dataA, _ := mem.ReadFile("ck.a")
	if prev, seq, err := DecodeSnapshot(dataA); err != nil || seq != 3 || prev.Restarts != 3 {
		t.Errorf("slot .a: seq=%d err=%v, want intact generation 3", seq, err)
	}
}

func TestLoadEmptyStore(t *testing.T) {
	st, err := OpenFS(NewMemFS(), "ck")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("Load on empty store = %v, want ErrNoCheckpoint", err)
	}
}

// TestDecodeCorruptTable drives DecodeSnapshot and Store.Load through
// every structural damage class; each must surface as the right typed
// error, never a panic or a silently wrong snapshot.
func TestDecodeCorruptTable(t *testing.T) {
	valid, err := EncodeSnapshot(testSnap(1), 5)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(off int, bit byte) []byte {
		out := append([]byte(nil), valid...)
		out[off] ^= bit
		return out
	}
	garbageJSON := func() []byte {
		out := append([]byte(nil), valid...)
		for i := headerLen; i < len(out); i++ {
			out[i] = '{'
		}
		sum := checksum(out)
		copy(out[28:headerLen], sum[:])
		return out
	}
	cases := []struct {
		name    string
		data    []byte
		wantErr error
	}{
		{"empty", nil, ErrCorruptCheckpoint},
		{"short header", valid[:headerLen-1], ErrCorruptCheckpoint},
		{"bad magic", mutate(0, 0xFF), ErrCorruptCheckpoint},
		{"torn payload", valid[:len(valid)-3], ErrCorruptCheckpoint},
		{"payload bit flip", mutate(len(valid)-1, 0x01), ErrCorruptCheckpoint},
		{"sequence bit flip", mutate(13, 0x40), ErrCorruptCheckpoint},
		{"checksum bit flip", mutate(30, 0x02), ErrCorruptCheckpoint},
		{"garbage payload, fixed checksum", garbageJSON(), ErrCorruptCheckpoint},
		{"future schema version", withVersion(valid, 2), ErrCheckpointMismatch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, _, err := DecodeSnapshot(tc.data); !errors.Is(err, tc.wantErr) {
				t.Errorf("DecodeSnapshot = %v, want %v", err, tc.wantErr)
			}
			// The same damage as the only on-disk generation: Load must
			// report the same typed error.
			mem := NewMemFS()
			if err := mem.WriteFile("ck.a", tc.data); err != nil {
				t.Fatal(err)
			}
			st, err := OpenFS(mem, "ck")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.Load(); !errors.Is(err, tc.wantErr) {
				t.Errorf("Load = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// TestEveryBitFlipDetected is the exhaustive version of the table
// above: flipping any single bit anywhere in an encoded snapshot —
// header, sequence number, checksum, payload — must fail validation.
func TestEveryBitFlipDetected(t *testing.T) {
	valid, err := EncodeSnapshot(testSnap(2), 4)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(valid); off++ {
		for _, bit := range []byte{0x01, 0x80} {
			valid[off] ^= bit
			if _, _, err := DecodeSnapshot(valid); err == nil {
				t.Fatalf("flip of bit %#x at offset %d decoded cleanly", bit, off)
			} else if !errors.Is(err, ErrCorruptCheckpoint) && !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("flip at offset %d: untyped error %v", off, err)
			}
			valid[off] ^= bit
		}
	}
	if _, _, err := DecodeSnapshot(valid); err != nil {
		t.Fatalf("restored original no longer decodes: %v", err)
	}
}

// TestLoadFallsBackPerDamageKind: with two generations on disk, every
// deterministic damage applied to the newest one must be detected and
// recovered by falling back to the older intact generation. A corrupt
// slot counts toward CorruptSlots/Fallbacks; a missing file is absence,
// not corruption, and must not.
func TestLoadFallsBackPerDamageKind(t *testing.T) {
	for _, kind := range []DamageKind{DamageNone, DamageTorn, DamageBitFlip, DamageRemove} {
		t.Run(kind.String(), func(t *testing.T) {
			mem := NewMemFS()
			st, err := OpenFS(mem, "ck")
			if err != nil {
				t.Fatal(err)
			}
			if err := st.Save(testSnap(1)); err != nil {
				t.Fatal(err)
			}
			if err := st.Save(testSnap(2)); err != nil {
				t.Fatal(err)
			}
			damaged, err := st.DamageNewest(kind)
			if err != nil {
				t.Fatal(err)
			}
			if damaged != (kind != DamageNone) {
				t.Fatalf("damaged = %v for kind %v", damaged, kind)
			}
			// Fresh store = simulated reboot after the crash.
			st2, err := OpenFS(mem, "ck")
			if err != nil {
				t.Fatal(err)
			}
			snap, err := st2.Load()
			if err != nil {
				t.Fatalf("Load after %v: %v", kind, err)
			}
			want := 2
			if kind != DamageNone {
				want = 1 // fell back to the older generation
			}
			if snap.Restarts != want {
				t.Errorf("recovered generation %d, want %d", snap.Restarts, want)
			}
			stats := st2.Stats()
			switch kind {
			case DamageNone:
				if stats.CorruptSlots != 0 || stats.Fallbacks != 0 {
					t.Errorf("clean load counted stats %+v", stats)
				}
			case DamageRemove:
				if stats.CorruptSlots != 0 || stats.Fallbacks != 0 {
					t.Errorf("a missing file is not corruption: %+v", stats)
				}
			default:
				if stats.CorruptSlots != 1 || stats.Fallbacks != 1 {
					t.Errorf("checksum detection not counted: %+v", stats)
				}
			}
		})
	}
}

func TestLoadBothSlotsDamaged(t *testing.T) {
	mem := NewMemFS()
	st, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(2)); err != nil {
		t.Fatal(err)
	}
	for _, slot := range []string{"ck.a", "ck.b"} {
		if err := mem.WriteFile(slot, []byte("shredded")); err != nil {
			t.Fatal(err)
		}
	}
	st2, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Load(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("Load with both slots shredded = %v, want ErrCorruptCheckpoint", err)
	}
	if st2.Stats().CorruptSlots != 2 {
		t.Errorf("CorruptSlots = %d, want 2", st2.Stats().CorruptSlots)
	}
}

// TestLoadFallsBackAcrossSchemaVersions: a newest generation written
// by a future build must not poison the lineage — Load falls back to
// the newest generation this build can read.
func TestLoadFallsBackAcrossSchemaVersions(t *testing.T) {
	mem := NewMemFS()
	st, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(2)); err != nil {
		t.Fatal(err)
	}
	dataB, err := mem.ReadFile("ck.b") // generation 2, even sequence
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.WriteFile("ck.b", withVersion(dataB, 2)); err != nil {
		t.Fatal(err)
	}
	st2, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st2.Load()
	if err != nil {
		t.Fatalf("Load across schema versions: %v", err)
	}
	if snap.Restarts != 1 {
		t.Errorf("recovered generation %d, want fallback to 1", snap.Restarts)
	}
	if st2.Stats().Fallbacks != 1 || st2.Stats().CorruptSlots != 0 {
		t.Errorf("version fallback miscounted: %+v", st2.Stats())
	}
}

func TestOSFSStore(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(2)); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st2.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Restarts != 2 {
		t.Errorf("reopened real-disk store loaded generation %d, want 2", snap.Restarts)
	}
	if err := st2.Save(testSnap(3)); err != nil {
		t.Fatal(err)
	}
	if snap, err = st2.Load(); err != nil || snap.Restarts != 3 {
		t.Errorf("rotation on real disk: generation %d, err %v", snap.Restarts, err)
	}
}

// TestFaultFSDeterministic: the injector is seeded — the same seed
// over the same operation sequence delivers the identical fault
// schedule and identical resulting file contents.
func TestFaultFSDeterministic(t *testing.T) {
	run := func(seed int64) (FaultStats, string) {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultConfig{Seed: seed, TornWriteProb: 0.3, BitFlipProb: 0.3, DropRenameProb: 0.3})
		for i := 0; i < 40; i++ {
			name := fmt.Sprintf("f%d", i)
			data := make([]byte, 50+i)
			for j := range data {
				data[j] = byte(i + j)
			}
			if err := ffs.WriteFile(name+".tmp", data); err != nil {
				t.Fatal(err)
			}
			if err := ffs.Rename(name+".tmp", name); err != nil {
				t.Fatal(err)
			}
		}
		var sb strings.Builder
		for i := 0; i < 40; i++ {
			data, err := mem.ReadFile(fmt.Sprintf("f%d", i))
			if err != nil {
				fmt.Fprintf(&sb, "%d:absent;", i)
				continue
			}
			fmt.Fprintf(&sb, "%d:%x;", i, data)
		}
		return ffs.Stats(), sb.String()
	}
	statsA, filesA := run(11)
	statsB, filesB := run(11)
	if statsA != statsB {
		t.Errorf("same seed, different fault schedule: %+v vs %+v", statsA, statsB)
	}
	if filesA != filesB {
		t.Error("same seed, different resulting file contents")
	}
	if statsA.TornWrites+statsA.BitFlips+statsA.DropRenames == 0 {
		t.Errorf("fixture delivered no faults at all: %+v", statsA)
	}
}

// TestFaultFSDropRenameAbsorbed: a dropped rename is the worst storage
// lie — Save reports success but nothing landed. The A/B rotation
// absorbs it as a missing newest generation: the previous one loads.
func TestFaultFSDropRenameAbsorbed(t *testing.T) {
	mem := NewMemFS()
	st, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(mem, FaultConfig{Seed: 3, DropRenameProb: 1})
	st2, err := OpenFS(ffs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Save(testSnap(2)); err != nil {
		t.Fatalf("a dropped rename must look like success to the caller, got %v", err)
	}
	if ffs.Stats().DropRenames != 1 {
		t.Fatalf("fixture did not drop the rename: %+v", ffs.Stats())
	}
	st3, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := st3.Load()
	if err != nil {
		t.Fatalf("Load after dropped rename: %v", err)
	}
	if snap.Restarts != 1 {
		t.Errorf("recovered generation %d, want the pre-drop generation 1", snap.Restarts)
	}
	if _, err := mem.ReadFile("ck.b.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Error("dropped rename left its temp file behind")
	}
}

// TestFaultFSTornWriteDetected: a torn write reaches the slot via the
// rename, and the next boot's checksum/structure validation refuses it.
func TestFaultFSTornWriteDetected(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultConfig{Seed: 9, TornWriteProb: 1})
	st, err := OpenFS(ffs, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Save(testSnap(1)); err != nil {
		t.Fatal(err)
	}
	if ffs.Stats().TornWrites != 1 {
		t.Fatalf("fixture did not tear the write: %+v", ffs.Stats())
	}
	st2, err := OpenFS(mem, "ck")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Load(); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("Load of torn-only store = %v, want ErrCorruptCheckpoint", err)
	}
}

func TestPlanKeyCheck(t *testing.T) {
	base := PlanKey{
		Algo: "MA-SRW", Preset: "twitter", Query: "q", Seed: 1,
		Units: 8, IntervalHours: 24, ChurnRate: 0.5, Faults: "f", Cooperative: true,
	}
	if err := base.Check(base); err != nil {
		t.Fatalf("identical plans rejected: %v", err)
	}
	cases := []struct {
		field  string
		mutate func(*PlanKey)
	}{
		{"algo", func(k *PlanKey) { k.Algo = "MA-TARW" }},
		{"preset", func(k *PlanKey) { k.Preset = "tumblr" }},
		{"query", func(k *PlanKey) { k.Query = "other" }},
		{"seed", func(k *PlanKey) { k.Seed = 2 }},
		{"units", func(k *PlanKey) { k.Units = 4 }},
		{"interval_hours", func(k *PlanKey) { k.IntervalHours = 48 }},
		{"churn_rate", func(k *PlanKey) { k.ChurnRate = 0 }},
		{"faults", func(k *PlanKey) { k.Faults = "" }},
		{"cooperative", func(k *PlanKey) { k.Cooperative = false }},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			stored := base
			tc.mutate(&stored)
			err := stored.Check(base)
			if !errors.Is(err, ErrCheckpointMismatch) {
				t.Fatalf("drifted %s accepted: %v", tc.field, err)
			}
			if !strings.Contains(err.Error(), tc.field) {
				t.Errorf("mismatch error %q does not name the drifted field %q", err, tc.field)
			}
		})
	}
}

func TestCrashPlanValidate(t *testing.T) {
	good := CrashPlan{Budget: 100, Points: []int{10, 50}}
	if err := good.validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	bad := []CrashPlan{
		{Budget: 0, Points: []int{1}},
		{Budget: 100},
		{Budget: 100, Points: []int{10}, Damage: []DamageKind{DamageTorn, DamageTorn}},
		{Budget: 100, Points: []int{0}},
		{Budget: 100, Points: []int{100}},
		{Budget: 100, Points: []int{50, 50}},
		{Budget: 100, Points: []int{50, 10}},
	}
	for i, p := range bad {
		if err := p.validate(); err == nil {
			t.Errorf("invalid plan %d accepted: %+v", i, p)
		}
	}
}
