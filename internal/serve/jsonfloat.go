package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
)

// Float is a float64 that survives JSON round-trips when non-finite.
// encoding/json refuses to marshal NaN and ±Inf (it returns an
// UnsupportedValueError), but Degraded partial estimates legitimately
// carry them: a shed query has no estimate (NaN), and the trajectory
// dispersion of a two-sample partial can overflow. Following the
// internal/store convention (RunSummary.EstimateBits), non-finite
// values are encoded as the strings "NaN", "+Inf" and "-Inf"; finite
// values marshal as ordinary JSON numbers, which Go already prints
// with a shortest round-trip representation. Responses additionally
// carry the raw IEEE-754 bits (see Response.EstimateBits) so auditors
// can compare estimates bit for bit without parsing decimals.
type Float float64

// MarshalJSON encodes non-finite values as strings and finite values
// as JSON numbers.
func (f Float) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts JSON numbers, the non-finite sentinels, and
// (for lenient clients) stringified finite numbers.
func (f *Float) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = Float(math.NaN())
			return nil
		case "+Inf", "Inf":
			*f = Float(math.Inf(1))
			return nil
		case "-Inf":
			*f = Float(math.Inf(-1))
			return nil
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return fmt.Errorf("serve: malformed float %q", s)
		}
		*f = Float(v)
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return err
	}
	*f = Float(v)
	return nil
}
