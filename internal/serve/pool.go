package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"
)

// Run operates the live worker pool until ctx is canceled: Workers
// executor goroutines plus one watcher that wakes blocked takers on
// cancellation. Every goroutine spawned here is joined before Run
// returns (the gospawn invariant), so no execution outlives the
// service shutdown. Use Do (or the HTTP handler) to submit requests
// while Run is active.
func (s *Service) Run(ctx context.Context) error {
	var wg sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.workerLoop(ctx)
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-ctx.Done()
		s.mu.Lock()
		s.closed = true
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
	wg.Wait()
	return ctx.Err()
}

// ListenAndServe runs the worker pool and an HTTP server on addr until
// ctx is canceled, then drains both. It exists so cmd/mba-serve needs
// no goroutines of its own; like Run, every spawn is joined before
// returning.
func (s *Service) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 10 * time.Second}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		s.Run(runCtx)
	}()
	go func() {
		defer wg.Done()
		<-runCtx.Done()
		hs.Shutdown(context.Background())
	}()
	err = hs.Serve(ln)
	cancel()
	wg.Wait()
	if errors.Is(err, http.ErrServerClosed) {
		err = ctx.Err()
	}
	return err
}

// workerLoop pulls admitted tasks and executes them until shutdown.
func (s *Service) workerLoop(ctx context.Context) {
	for {
		tk := s.take()
		if tk == nil {
			return
		}
		s.process(ctx, tk)
		close(tk.done)
	}
}

// take blocks for the next dispatchable task (nil on shutdown).
func (s *Service) take() *task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if tk := s.nextTask(); tk != nil {
			return tk
		}
		if s.closed {
			return nil
		}
		s.cond.Wait()
	}
}

// process executes one dispatched task on the live path, coalescing
// identical concurrent requests single-flight: the first becomes the
// leader and runs the walk; followers wait for its outcome, inherit
// the result, refund their reservation and charge nothing.
func (s *Service) process(ctx context.Context, tk *task) {
	if tk.ctx != nil {
		ctx = tk.ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	headroom, ok := deadlineLeft(tk.req, 0)
	if !ok {
		headroom = 0
	}
	flightKey := ""
	if !tk.req.NoCache {
		flightKey = fmt.Sprintf("%s|%d", tk.key, tk.granted)
	}
	if flightKey != "" {
		s.mu.Lock()
		if f := s.flights[flightKey]; f != nil {
			s.mu.Unlock()
			<-f.done
			s.mu.Lock()
			s.ledger.Refund(tk.ten.account, tk.granted)
			s.unprobe(tk.ten)
			resp := tk.baseResponse()
			resp.Status = f.resp.Status
			resp.Reason = f.resp.Reason
			resp.Estimate = f.resp.Estimate
			resp.EstimateBits = f.resp.EstimateBits
			resp.Variance = f.resp.Variance
			resp.Budget = f.resp.Budget
			resp.Cost = f.resp.Cost
			resp.Samples = f.resp.Samples
			resp.Degraded = f.resp.Degraded
			resp.Err = f.resp.Err
			resp.Charged = 0
			resp.Coalesced = true
			tk.resp = resp
			s.met.Coalesced++
			switch resp.Status {
			case StatusDegraded:
				s.met.Degraded++
			case StatusOK:
				s.met.Ok++
			case StatusError:
				s.met.Errors++
			}
			s.mu.Unlock()
			return
		}
		f := &flight{done: make(chan struct{})}
		s.flights[flightKey] = f
		s.mu.Unlock()
		s.execute(ctx, tk, headroom)
		s.mu.Lock()
		f.resp = tk.resp
		delete(s.flights, flightKey)
		s.mu.Unlock()
		close(f.done)
		return
	}
	s.execute(ctx, tk, headroom)
}

// Do submits one request on the live path and blocks for its
// response. Cancellation of ctx while the request is still queued
// sheds it; once executing, the context is threaded into the walk and
// a canceled walk returns a Degraded partial.
func (s *Service) Do(ctx context.Context, req Request) Response {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.Lock()
	if req.ID == "" {
		s.nextID++
		req.ID = fmt.Sprintf("live-%06d", s.nextID)
	}
	q, err := parseFor(req)
	if err != nil {
		tk := s.normalizeUnparsed(req)
		tk.resp = tk.baseResponse()
		tk.resp.Status = StatusError
		tk.resp.Err = err.Error()
		s.met.Requests++
		s.met.Errors++
		s.mu.Unlock()
		return tk.resp
	}
	tk := s.normalize(req, q)
	tk.ctx = ctx
	if s.closed {
		tk.resp = tk.baseResponse()
		tk.resp.Status = StatusError
		tk.resp.Err = "serve: service is shut down"
		s.met.Requests++
		s.met.Errors++
		s.mu.Unlock()
		return tk.resp
	}
	final := s.admit(tk)
	if !final {
		s.cond.Signal()
	}
	s.mu.Unlock()
	if final {
		return tk.resp
	}
	select {
	case <-tk.done:
		return tk.resp
	case <-ctx.Done():
		s.mu.Lock()
		dropped := s.dropQueued(tk)
		if dropped {
			s.unprobe(tk.ten)
			s.met.Admitted--
			s.shed(tk, ReasonCanceled)
			s.mu.Unlock()
			return tk.resp
		}
		s.mu.Unlock()
		// Already executing: the walk sees the same ctx and degrades.
		<-tk.done
		return tk.resp
	}
}
