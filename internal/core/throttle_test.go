package core

import (
	"errors"
	"math"
	"testing"

	"mba/internal/api"
	"mba/internal/model"
	"mba/internal/query"
)

// yieldPolicy is a retry policy for yield-mode clients: no jitter so
// runs replay deterministically, no stall watchdog (tests arm it
// explicitly when they want it).
func yieldPolicy() api.RetryPolicy {
	p := api.DefaultRetryPolicy()
	p.Jitter = 0
	return p
}

// TestThrottleParksDrainsAndResumes is the core-layer round-trip of
// the cooperative scheduler's unit of work: a walk parks on a
// yield-mode throttle (checkpoint flagged Parked, nothing charged for
// the rejected call), and a later resume drains free warm-cache steps
// before paying for fresh territory.
func TestThrottleParksDrainsAndResumes(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)

	// Segment 1: fault-free blocking run on a modest budget. Leaves a
	// clean (unparked) checkpoint with a warm response cache.
	c1 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 1500)
	c1.Policy = yieldPolicy()
	s1, err := NewSession(c1, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res1, err := RunSRW(s1, SRWOptions{View: LevelView, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Degraded {
		t.Fatalf("fault-free segment degraded: %v", res1.DegradedBy)
	}
	if res1.Checkpoint.Parked() {
		t.Fatal("clean budget exhaustion must not flag the checkpoint parked")
	}
	if res1.DrainedSteps != 0 {
		t.Fatalf("fault-free run drained %d steps, want 0", res1.DrainedSteps)
	}

	// Segment 2: resume in yield mode over an always-throttling server.
	// The warm cache carries the walk for a while (a fresh RNG segment
	// re-wanders paid territory); the first charged attempt parks it.
	c2 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{RateLimitProb: 1, Seed: 8}), 1500)
	c2.Policy = yieldPolicy()
	c2.YieldOnThrottle = true
	s2, err := NewSession(c2, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := RunSRW(s2, SRWOptions{View: LevelView, Seed: 1, Resume: res1.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Degraded || !errors.Is(res2.DegradedBy, api.ErrThrottled) {
		t.Fatalf("want a throttle park, got degraded=%v by %v", res2.Degraded, res2.DegradedBy)
	}
	var te *api.ThrottledError
	if !errors.As(res2.DegradedBy, &te) || te.ReadyAt <= 0 {
		t.Fatalf("park carries no usable ReadyAt: %v", res2.DegradedBy)
	}
	if !res2.Checkpoint.Parked() {
		t.Fatal("throttle-parked checkpoint not flagged Parked")
	}
	if c2.Cost() != 0 {
		t.Errorf("a run where every charge 429s still charged %d calls", c2.Cost())
	}
	if res2.Cost != res1.Cost {
		t.Errorf("parked segment cost %d, want unchanged %d", res2.Cost, res1.Cost)
	}
	if res2.Samples < res1.Samples {
		t.Errorf("park lost samples: %d -> %d", res1.Samples, res2.Samples)
	}

	// Segment 3: the window reopened — resume fault-free. The parked
	// checkpoint's warm cache drains free steps (counted this time:
	// wasParked) before fresh fetches start charging.
	c3 := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 1500)
	c3.Policy = yieldPolicy()
	c3.YieldOnThrottle = true
	s3, err := NewSession(c3, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}
	res3, err := RunSRW(s3, SRWOptions{View: LevelView, Seed: 1, Resume: res2.Checkpoint})
	if err != nil {
		t.Fatal(err)
	}
	if res3.Degraded {
		t.Fatalf("healthy resume degraded: %v", res3.DegradedBy)
	}
	if res3.Checkpoint.Parked() {
		t.Error("clean completion left the checkpoint flagged parked")
	}
	if res3.DrainedSteps == 0 {
		t.Error("park-resumed segment drained no free steps from the warm cache")
	}
	if res3.DrainedSteps >= res3.Samples {
		t.Errorf("drained %d of %d samples: accounting claims charged steps as free",
			res3.DrainedSteps, res3.Samples)
	}
	if res3.Cost != res1.Cost+c3.Cost() {
		t.Errorf("cumulative cost %d, want %d (prior) + %d (segment 3)",
			res3.Cost, res1.Cost, c3.Cost())
	}
	if res3.Checkpoint.Drained() != res3.DrainedSteps {
		t.Errorf("checkpoint drained %d != result %d", res3.Checkpoint.Drained(), res3.DrainedSteps)
	}
	if math.IsNaN(res3.Estimate) {
		t.Error("resumed run produced no estimate")
	}
}

// TestDrainReadyProbe pins the cache-satisfiable probe against the
// charged-fetch ground truth: whenever DrainReady approves, performing
// the oracle step and the per-sample facts must charge nothing.
func TestDrainReadyProbe(t *testing.T) {
	p := testPlatform(t)
	q := query.AvgQuery("privacy", query.Followers)
	cl := api.NewClient(api.NewServer(p, api.Twitter(), api.Faults{}), 4000)
	s, err := NewSession(cl, q, model.Day)
	if err != nil {
		t.Fatal(err)
	}

	// Cold cache: nothing is ready.
	if s.DrainReady(LevelView, 1) {
		t.Fatal("cold cache approved a drain step")
	}

	// Warm a region by walking it, then audit the probe over every node
	// the session learned about.
	res, err := RunSRW(s, SRWOptions{View: LevelView, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Fatalf("fixture run degraded: %v", res.DegradedBy)
	}
	oracle := s.Neighbors(LevelView)
	ready, audited := 0, 0
	for u := int64(0); u < 2000; u++ {
		if !s.DrainReady(LevelView, u) {
			continue
		}
		ready++
		before := cl.Cost()
		ns, err := oracle(u)
		if err != nil {
			t.Fatalf("probe-approved oracle(%d) failed: %v", u, err)
		}
		for _, v := range ns {
			if _, _, err := s.MatchValue(v); err != nil {
				t.Fatalf("probe-approved sample facts for %d failed: %v", v, err)
			}
		}
		if cl.Cost() != before {
			t.Fatalf("probe-approved step from %d charged %d calls", u, cl.Cost()-before)
		}
		audited++
	}
	if ready == 0 {
		t.Fatal("no node was drain-ready after a full walk; probe is vacuous")
	}
	t.Logf("probe approved %d nodes, all %d audited free", ready, audited)
}
