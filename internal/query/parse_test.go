package query_test

import (
	"testing"

	"mba/internal/model"
	"mba/internal/query"
)

// roundTripQueries covers every aggregate, measure, and predicate
// constructor, with and without a time window.
var roundTripQueries = []query.Query{
	{Agg: query.Count, Measure: query.One, Keyword: "privacy"},
	{Agg: query.Sum, Measure: query.KeywordPostCount, Keyword: "obama"},
	{Agg: query.Avg, Measure: query.Followers, Keyword: "privacy",
		Where: []query.Predicate{query.MaleOnly}},
	{Agg: query.Avg, Measure: query.DisplayNameLength, Keyword: "nba",
		Window: model.Window{From: 0, To: 7 * model.Day}},
	{Agg: query.Avg, Measure: query.Age, Keyword: "election",
		Window: model.Window{From: 2 * model.Day, To: 30 * model.Day},
		Where:  []query.Predicate{query.FemaleOnly, query.AgeBetween(18, 34), query.MinFollowers(100)}},
	{Agg: query.Sum, Measure: query.KeywordPostLikes, Keyword: "with \"quotes\" and \t escapes"},
	{Agg: query.Avg, Measure: query.KeywordPostMeanLikes, Keyword: ""},
}

func TestParseQueryRoundTrip(t *testing.T) {
	for _, want := range roundTripQueries {
		s := want.String()
		got, err := query.ParseQuery(s)
		if err != nil {
			t.Errorf("ParseQuery(%q): %v", s, err)
			continue
		}
		if got.String() != s {
			t.Errorf("round trip of %q produced %q", s, got.String())
		}
		if got.Agg != want.Agg || got.Measure.Name != want.Measure.Name ||
			got.Keyword != want.Keyword || got.Window != want.Window ||
			len(got.Where) != len(want.Where) {
			t.Errorf("ParseQuery(%q) lost structure: got %+v", s, got)
		}
	}
}

func TestParseQueryErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT MEDIAN(followers) FROM users WHERE timeline CONTAINS \"x\"",
		"SELECT AVG(followers FROM users WHERE timeline CONTAINS \"x\"",
		"SELECT AVG(nonesuch) FROM users WHERE timeline CONTAINS \"x\"",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS x",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"x\" IN [d0h0 d1h0)",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"x\" IN [zero,d1h0)",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"x\" AND height>=2",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"x\" AND age in [a,b]",
		"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"x\" trailing",
	}
	for _, s := range bad {
		if _, err := query.ParseQuery(s); err == nil {
			t.Errorf("ParseQuery(%q) unexpectedly succeeded", s)
		}
	}
}

// FuzzParseQuery asserts that ParseQuery never panics, and that any
// input it accepts renders to a canonical form that re-parses to the
// identical string (idempotent normalisation). `go test` runs the seed
// corpus as a smoke test; CI additionally runs a short -fuzz session.
func FuzzParseQuery(f *testing.F) {
	for _, q := range roundTripQueries {
		f.Add(q.String())
	}
	f.Add("SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"\\u00e9\"")
	f.Add("SELECT AVG(age) FROM users WHERE timeline CONTAINS \"x\" IN [d-1h-3,d304h0)")
	f.Add("SELECT SUM(keyword-posts) FROM users WHERE timeline CONTAINS \"x\" AND followers>=007")
	f.Fuzz(func(t *testing.T, s string) {
		q, err := query.ParseQuery(s)
		if err != nil {
			return
		}
		canon := q.String()
		q2, err := query.ParseQuery(canon)
		if err != nil {
			t.Fatalf("canonical form %q of accepted input %q does not re-parse: %v", canon, s, err)
		}
		if got := q2.String(); got != canon {
			t.Fatalf("canonical form not stable: %q re-parses to %q", canon, got)
		}
	})
}
