package api

import (
	"errors"
	"testing"
	"time"
)

// TestYieldOnThrottleReturnsTypedError: in non-blocking mode a 429
// surfaces immediately as a *ThrottledError carrying the virtual
// timestamp at which the window reopens, with the window wait already
// booked as ThrottleWait and nothing charged.
func TestYieldOnThrottleReturnsTypedError(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 11})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.YieldOnThrottle = true

	_, err := cl.Connections(1)
	if !errors.Is(err, ErrThrottled) {
		t.Fatalf("want ErrThrottled, got %v", err)
	}
	var te *ThrottledError
	if !errors.As(err, &te) {
		t.Fatalf("error is not a *ThrottledError: %v", err)
	}
	window := Twitter().RateLimitWindow
	if te.ReadyAt != window {
		t.Errorf("ReadyAt = %v, want one window (%v): zero calls charged, one window booked", te.ReadyAt, window)
	}
	if cl.Cost() != 0 {
		t.Errorf("throttled call charged %d calls", cl.Cost())
	}
	st := cl.Stats()
	if st.RateLimitHits != 1 {
		t.Errorf("RateLimitHits = %d, want 1 (no silent retries in yield mode)", st.RateLimitHits)
	}
	if st.ThrottleWait != window || st.Wait != window {
		t.Errorf("ThrottleWait = %v Wait = %v, want both %v", st.ThrottleWait, st.Wait, window)
	}

	// Blocking mode on the same fault schedule keeps the original
	// behavior: retries absorb the 429s until MaxRetries, then the raw
	// sentinel surfaces.
	srv2 := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 11})
	cl2 := NewClient(srv2, 0)
	cl2.Policy = noJitterPolicy()
	if _, err := cl2.Connections(1); !errors.Is(err, ErrRateLimited) || errors.Is(err, ErrThrottled) {
		t.Fatalf("blocking mode want plain ErrRateLimited, got %v", err)
	}
}

// TestWaitAttribution: the Stats.Wait total splits into ThrottleWait
// (429 windows), BackoffWait (transient backoff + breaker cooldowns),
// and a slow-call latency remainder.
func TestWaitAttribution(t *testing.T) {
	p := testPlatform(t)

	// Pure 429s: everything is throttle wait.
	srv := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 3})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.Policy.RateLimitWait = time.Minute
	_, err := cl.Connections(1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatal(err)
	}
	st := cl.Stats()
	if st.ThrottleWait != st.Wait || st.BackoffWait != 0 {
		t.Errorf("pure-429 split: ThrottleWait=%v BackoffWait=%v Wait=%v", st.ThrottleWait, st.BackoffWait, st.Wait)
	}

	// Pure transients: everything is backoff wait.
	srv = NewServer(p, Twitter(), Faults{TransientProb: 1, Seed: 4})
	cl = NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	if _, err := cl.Connections(1); !errors.Is(err, ErrTransient) {
		t.Fatal(err)
	}
	st = cl.Stats()
	if st.BackoffWait != st.Wait || st.ThrottleWait != 0 || st.Wait == 0 {
		t.Errorf("pure-transient split: ThrottleWait=%v BackoffWait=%v Wait=%v", st.ThrottleWait, st.BackoffWait, st.Wait)
	}

	// Slow calls only: neither bucket claims the latency remainder.
	srv = NewServer(p, Twitter(), Faults{SlowCallProb: 1, SlowCallLatency: time.Second, Seed: 5})
	cl = NewClient(srv, 0)
	if _, err := cl.Connections(1); err != nil {
		t.Fatal(err)
	}
	st = cl.Stats()
	if st.ThrottleWait != 0 || st.BackoffWait != 0 || st.Wait != time.Second {
		t.Errorf("slow-call split: ThrottleWait=%v BackoffWait=%v Wait=%v", st.ThrottleWait, st.BackoffWait, st.Wait)
	}

	// The accumulation law survives Add.
	sum := Stats{Wait: 3 * time.Second, ThrottleWait: time.Second, BackoffWait: time.Second}.
		Add(Stats{Wait: 2 * time.Second, ThrottleWait: 2 * time.Second})
	if sum.Wait != 5*time.Second || sum.ThrottleWait != 3*time.Second || sum.BackoffWait != time.Second {
		t.Errorf("Add lost attribution: %+v", sum)
	}
}

// TestYieldOnThrottleStallWatchdog: a walker that only ever throttles
// must still trip the stall watchdog in yield mode — parking is not a
// license to spin forever without budget progress.
func TestYieldOnThrottleStallWatchdog(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 6})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.Policy.StallWait = 20 * time.Minute // trips on the second booked window
	cl.YieldOnThrottle = true

	if _, err := cl.Connections(1); !errors.Is(err, ErrThrottled) {
		t.Fatalf("first throttle: %v", err)
	}
	_, err := cl.Connections(2)
	if !errors.Is(err, ErrStalled) {
		t.Fatalf("want ErrStalled once accrued throttle wait passes StallWait, got %v", err)
	}
	if cl.Stats().StallTrips != 1 {
		t.Errorf("StallTrips = %d, want 1", cl.Stats().StallTrips)
	}
}

// TestCachePredicates: the Can*/CachedConnections probes answer purely
// from cache and never charge.
func TestCachePredicates(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 0)
	if cl.CanConnections(1) || cl.CanTimeline(1) {
		t.Fatal("cold cache claims readiness")
	}
	if _, err := cl.Connections(1); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Timeline(1); err != nil {
		t.Fatal(err)
	}
	cost := cl.Cost()
	if !cl.CanConnections(1) || !cl.CanTimeline(1) {
		t.Error("warm cache denies readiness")
	}
	ns, ok := cl.CachedConnections(1)
	if !ok {
		t.Error("CachedConnections missing a paid response")
	}
	want, _, err := srv.Connections(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != len(want) {
		t.Errorf("cached neighbor list has %d entries, server says %d", len(ns), len(want))
	}
	if cl.Cost() != cost {
		t.Errorf("cache predicates charged %d calls", cl.Cost()-cost)
	}

	// Negative verdicts make the probes ready too: the user is known
	// unreachable without another charged call.
	psrv := NewServer(p, Twitter(), Faults{PrivateProb: 1, Seed: 9})
	pcl := NewClient(psrv, 0)
	if _, err := pcl.Timeline(2); !errors.Is(err, ErrPrivate) {
		t.Fatalf("want ErrPrivate, got %v", err)
	}
	if !pcl.CanTimeline(2) || !pcl.CanConnections(2) {
		t.Error("cached private verdict should make both probes ready")
	}
}
