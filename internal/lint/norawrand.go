package lint

import (
	"go/ast"
)

// randGlobals are the top-level math/rand (and math/rand/v2) functions
// that draw from process-global state. Any such draw is invisible to
// Options.Seed and breaks replay.
var randGlobals = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 spellings.
	"N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"Uint32N": true, "Uint64N": true, "UintN": true,
}

// NoRawRand forbids process-global math/rand draws and rand.NewSource
// seeded from a compile-time constant in non-test code. Every RNG must
// be derived from a configured seed (the `seed ^ const` and
// `seed + offset` idioms pass), so a run replays exactly from
// Options.Seed — the property checkpoints, fault injection, and every
// figure in the evaluation depend on.
var NoRawRand = &Analyzer{
	Name: "norawrand",
	Doc: "forbid global math/rand state and constant-seeded rand.NewSource; " +
		"all randomness must derive from a configured seed",
	Run: runNoRawRand,
}

func runNoRawRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path := pass.ImportedPkgPath(id)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			switch {
			case randGlobals[sel.Sel.Name]:
				pass.Reportf(call.Pos(),
					"global %s.%s draws from process-global state and breaks seed-determinism; derive a *rand.Rand from the run's configured seed",
					path, sel.Sel.Name)
			case sel.Sel.Name == "NewSource" && len(call.Args) == 1:
				if tv, ok := pass.TypesInfo.Types[call.Args[0]]; ok && tv.Value != nil {
					pass.Reportf(call.Pos(),
						"rand.NewSource with a constant seed is not derived from the run's configured seed; use seed^const or seed+offset")
				}
			}
			return true
		})
	}
	return nil
}
