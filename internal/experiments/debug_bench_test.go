package experiments

import (
	"testing"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// TestDebugBenchTARW inspects MA-TARW behaviour on the bench platform:
// pilot interval statistics, selected T, and the convergence
// trajectory for AVG(followers) and COUNT on privacy and new york.
func TestDebugBenchTARW(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	p, err := workload.Get(workload.Bench)
	if err != nil {
		t.Fatal(err)
	}
	for _, kw := range []string{"privacy", "new york"} {
		cnt, _ := p.GroundTruth(query.CountQuery(kw))
		t.Logf("%s: adopters=%v", kw, cnt)
		debugCount(t, p, kw)
		q := query.AvgQuery(kw, query.Followers)
		truth, _ := p.GroundTruth(q)

		srv := api.NewServer(p, api.Twitter(), api.Faults{})
		s, _ := core.NewSession(api.NewClient(srv, 0), q, model.Day)
		best, pilots, err := core.SelectInterval(s, nil, 50, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range pilots {
			t.Logf("  pilot T=%-3s h=%-4d d=%-7.2f score=%.3f phi=%.3g",
				levelgraph.IntervalName(pr.Interval), pr.H, pr.D, pr.Score, pr.Conductance)
		}
		t.Logf("  selected T=%s", levelgraph.IntervalName(best))

		// Baseline MA-SRW at T=1 day for the cost bar.
		srvS, _ := api.NewServer(p, api.Twitter(), api.Faults{}), 0
		sS, _ := core.NewSession(api.NewClient(srvS, 120000), q, model.Day)
		resS, err := core.RunSRW(sS, core.SRWOptions{View: core.LevelView, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("  MA-SRW AVG est=%.1f relerr=%.3f cost=%d samples=%d",
			resS.Estimate, stats.RelativeError(resS.Estimate, truth), resS.Cost, resS.Samples)
		for i := 0; i < len(resS.Trajectory); i += len(resS.Trajectory)/5 + 1 {
			pt := resS.Trajectory[i]
			t.Logf("    traj cost=%6d est=%8.1f relerr=%.3f", pt.Cost, pt.Estimate, stats.RelativeError(pt.Estimate, truth))
		}

		for _, fixed := range []model.Tick{0, model.Month, 2 * model.Month} {
			srv2 := api.NewServer(p, api.Twitter(), api.Faults{})
			interval := fixed
			sel := false
			if fixed == 0 {
				interval = model.Day
				sel = true
			}
			s2, _ := core.NewSession(api.NewClient(srv2, 60000), q, interval)
			res, err := core.RunTARW(s2, core.TARWOptions{Seed: 5, SelectInterval: sel})
			if err != nil {
				t.Fatal(err)
			}
			name := "auto"
			if fixed != 0 {
				name = levelgraph.IntervalName(fixed)
			}
			t.Logf("  TARW[T=%s] AVG est=%.1f truth=%.1f relerr=%.3f cost=%d walks=%d zero=%d (final T=%s)",
				name, res.Estimate, truth, stats.RelativeError(res.Estimate, truth),
				res.Cost, res.Samples, res.ZeroProbPaths, levelgraph.IntervalName(s2.Interval))
			if len(res.Trajectory) > 0 {
				for i := 0; i < len(res.Trajectory); i += len(res.Trajectory)/5 + 1 {
					pt := res.Trajectory[i]
					t.Logf("    traj cost=%6d est=%8.1f relerr=%.3f", pt.Cost, pt.Estimate, stats.RelativeError(pt.Estimate, truth))
				}
			}
		}
	}
}

// debugCount compares the COUNT estimators at bench scale.
func debugCount(t *testing.T, p *platform.Platform, kw string) {
	q := query.CountQuery(kw)
	truth, _ := p.GroundTruth(q)
	runOne := func(name string, f func(s *core.Session) (core.Result, error), interval model.Tick) {
		srv := api.NewServer(p, api.Twitter(), api.Faults{})
		s, _ := core.NewSession(api.NewClient(srv, 120000), q, interval)
		res, err := f(s)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("  COUNT %-8s est=%8.0f truth=%.0f relerr=%.3f cost=%d", name, res.Estimate, truth, stats.RelativeError(res.Estimate, truth), res.Cost)
		for i := 0; i < len(res.Trajectory); i += len(res.Trajectory)/4 + 1 {
			pt := res.Trajectory[i]
			t.Logf("    traj cost=%6d est=%8.0f relerr=%.3f", pt.Cost, pt.Estimate, stats.RelativeError(pt.Estimate, truth))
		}
	}
	runOne("MA-SRW", func(s *core.Session) (core.Result, error) {
		return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: 5})
	}, model.Day)
	runOne("M&R", func(s *core.Session) (core.Result, error) {
		return core.RunMR(s, core.SRWOptions{View: core.LevelView, Seed: 5})
	}, model.Day)
	runOne("TARW", func(s *core.Session) (core.Result, error) {
		return core.RunTARW(s, core.TARWOptions{Seed: 5, AllowCrossLevel: true, WeightClip: 500, PEstimates: 5})
	}, model.Month)
}
