// Package linttest runs mba-lint analyzers over fixture packages in
// the style of golang.org/x/tools/go/analysis/analysistest: fixture
// sources live under testdata/src/<path>, and every line that should
// trigger a diagnostic carries a trailing comment of the form
//
//	code() // want "regexp"
//
// with one quoted regexp per expected diagnostic on that line. The
// test fails on unexpected diagnostics and on unmatched expectations.
package linttest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"mba/internal/lint"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads each fixture package under dir/src, applies the analyzer,
// and compares diagnostics against `// want` expectations.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgPaths ...string) {
	t.Helper()
	loader := lint.NewFixtureLoader(filepath.Join(dir, "src"))
	pkgs := make(map[string]*lint.Package, len(pkgPaths))
	for _, path := range pkgPaths {
		pkg, err := loader.Load(path)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, path, err)
			continue
		}
		pkgs[path] = pkg
	}
	// The whole-program view spans every loaded fixture package,
	// including transitively loaded dependencies, so interprocedural
	// analyzers see the same shape they would on the real module.
	prog := lint.NewProgram(loader.Loaded())
	for _, path := range pkgPaths {
		pkg, ok := pkgs[path]
		if !ok {
			continue
		}
		diags, err := lint.RunAnalyzer(a, pkg, prog)
		if err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, path, err)
			continue
		}
		wants, err := expectations(pkg)
		if err != nil {
			t.Errorf("%s: parsing expectations in %s: %v", a.Name, path, err)
			continue
		}
		for _, d := range diags {
			if !claim(wants, d) {
				t.Errorf("%s: unexpected diagnostic at %s:%d: %s", a.Name, d.Pos.Filename, d.Pos.Line, d.Message)
			}
		}
		for _, w := range wants {
			if !w.hit {
				t.Errorf("%s: expected diagnostic matching %q at %s:%d, got none", a.Name, w.re, w.file, w.line)
			}
		}
	}
}

func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

// wantRe pulls the quoted regexps off a `// want "..." "..."` comment.
var wantRe = regexp.MustCompile(`^//\s*want\s+(.*)$`)

func expectations(pkg *lint.Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				patterns, err := splitQuoted(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %w", pos.Filename, pos.Line, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s:%d: bad want pattern %q: %w", pos.Filename, pos.Line, p, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out, nil
}

// splitQuoted parses a sequence of Go string literals ("..." or
// back-quoted) separated by spaces.
func splitQuoted(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte = s[0]
		if quote != '"' && quote != '`' {
			return nil, fmt.Errorf("want arguments must be quoted strings, got %q", s)
		}
		end := 1
		for end < len(s) {
			if s[end] == quote && (quote == '`' || s[end-1] != '\\') {
				break
			}
			end++
		}
		if end == len(s) {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		lit := s[:end+1]
		unq, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want literal %s: %w", lit, err)
		}
		out = append(out, unq)
		s = strings.TrimSpace(s[end+1:])
	}
	return out, nil
}
