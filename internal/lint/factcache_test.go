package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"mba/internal/lint"
)

// cachedFixtureProgram builds the fixture program through the given
// fact cache, using a fresh loader each time so nothing is shared
// between builds except the cache file.
func cachedFixtureProgram(t *testing.T, cache *lint.FactCache, paths ...string) *lint.Program {
	t.Helper()
	loader := lint.NewFixtureLoader(filepath.Join("testdata", "src"))
	for _, p := range paths {
		if _, err := loader.Load(p); err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
	}
	return lint.NewProgramCached(loader.Loaded(), cache)
}

// TestFactCacheRoundTrip builds the same program twice through a
// shared cache file: the first build must miss and populate, the
// second must hit for every package — and both must converge to the
// same summaries.
func TestFactCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "factcache.json")
	targets := []string{"ctxflow/core", "lockorder", "recursion"}

	cold := lint.OpenFactCache(path)
	prog1 := cachedFixtureProgram(t, cold, targets...)
	if cold.Misses == 0 {
		t.Error("cold cache reported no misses")
	}
	if cold.Hits != 0 {
		t.Errorf("cold cache reported %d hits", cold.Hits)
	}
	if err := cold.Save(); err != nil {
		t.Fatal(err)
	}

	warm := lint.OpenFactCache(path)
	prog2 := cachedFixtureProgram(t, warm, targets...)
	if warm.Hits == 0 {
		t.Error("warm cache reported no hits")
	}
	if warm.Misses != 0 {
		t.Errorf("warm cache reported %d misses on unchanged sources", warm.Misses)
	}

	// Cached facts must be indistinguishable from recomputed ones.
	for _, id := range []string{
		"ctxflow/core.BadFresh", "ctxflow/core.threaded", "ctxflow/core.Free",
		"lockorder.cThenB", "recursion.even", "(*api.Client).Search",
	} {
		f1, f2 := prog1.FuncByID(id), prog2.FuncByID(id)
		if f1 == nil || f2 == nil {
			t.Fatalf("Func %q missing from one of the builds", id)
		}
		s1, s2 := prog1.SummaryOf(f1), prog2.SummaryOf(f2)
		if s1.IncursCost != s2.IncursCost || s1.ConsumesCtx != s2.ConsumesCtx ||
			s1.UsesCtx != s2.UsesCtx || s1.ReturnsError != s2.ReturnsError {
			t.Errorf("%s: cached summary diverges: cold=%+v warm=%+v", id, s1, s2)
		}
		a1, a2 := s1.AcquiresSorted(), s2.AcquiresSorted()
		if len(a1) != len(a2) {
			t.Errorf("%s: acquires diverge: cold=%v warm=%v", id, a1, a2)
		}
	}
}

// TestFactCacheCorruptFileIsEmpty: a corrupt cache file degrades to an
// empty cache instead of failing the run.
func TestFactCacheCorruptFileIsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "factcache.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	cache := lint.OpenFactCache(path)
	cachedFixtureProgram(t, cache, "recursion")
	if cache.Hits != 0 || cache.Misses == 0 {
		t.Errorf("corrupt cache should behave as empty: hits=%d misses=%d", cache.Hits, cache.Misses)
	}
}
