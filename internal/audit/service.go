package audit

import (
	"math"

	"mba/internal/api"
	"mba/internal/serve"
)

// ServiceTrace is everything CheckService needs to audit one service
// run: the requests that went in, the responses that came out (in
// input order), the ledger's final books, and — when the run was
// fault-free — the offline oracle for bit-identity.
type ServiceTrace struct {
	Requests  []serve.Request
	Responses []serve.Response
	Ledger    api.LedgerStats
	// Quota maps tenant name to its configured quota; Account maps
	// tenant name to its ledger account index.
	Quota   map[string]int
	Account map[string]int
	// OfflineBits/OfflineCost map response ID to the bit pattern and
	// cost an uninterrupted offline run of the same (query, algo,
	// granted budget, seed, deadline) produced. Only executed
	// responses listed here are checked; pass nil to skip.
	OfflineBits map[string]uint64
	OfflineCost map[string]int
}

// CheckService enforces the serving layer's contract on a finished
// run:
//
//   - no silent drops: every request has exactly one response, with a
//     known status and the request's ID;
//   - shed responses are well-formed degraded partials: a reason, no
//     charge, no spent cost, NaN estimate — shedding is free for the
//     tenant;
//   - cache hits and coalesced followers are never charged;
//   - nothing is charged beyond the granted budget, and per-tenant
//     total charges never exceed the tenant's quota;
//   - the ledger obeys CheckLedger's conservation laws with committed
//     credits equal to the sum of charges;
//   - executed fault-free responses are bit-identical (estimate bits
//     and cost) to their offline oracle runs.
func (a Auditor) CheckService(tr ServiceTrace) *Report {
	r := &Report{}

	r.check()
	if len(tr.Responses) != len(tr.Requests) {
		r.failf("serve-no-silent-drop", "%d requests but %d responses", len(tr.Requests), len(tr.Responses))
		return r
	}

	seen := map[string]bool{}
	chargedByTenant := map[string]int{}
	nanBits := math.Float64bits(math.NaN())
	for i, resp := range tr.Responses {
		r.check()
		if resp.ID == "" || seen[resp.ID] {
			r.failf("serve-no-silent-drop", "response %d has empty or duplicate id %q", i, resp.ID)
		}
		seen[resp.ID] = true
		if tr.Requests[i].ID != "" {
			r.check()
			if resp.ID != tr.Requests[i].ID {
				r.failf("serve-no-silent-drop", "response %d answers id %q, request was %q",
					i, resp.ID, tr.Requests[i].ID)
			}
		}
		switch resp.Status {
		case serve.StatusOK, serve.StatusDegraded, serve.StatusShed, serve.StatusError:
		default:
			r.check()
			r.failf("serve-no-silent-drop", "response %s has unknown status %q", resp.ID, resp.Status)
			continue
		}

		if resp.Status == serve.StatusShed {
			r.check()
			if !resp.Degraded || resp.Reason == "" {
				r.failf("serve-shed-wellformed", "shed %s lacks degraded flag or reason: %+v", resp.ID, resp)
			}
			r.check()
			if resp.Charged != 0 || resp.Cost != 0 {
				r.failf("serve-shed-wellformed", "shed %s charged %d / cost %d; shedding must be free",
					resp.ID, resp.Charged, resp.Cost)
			}
			r.check()
			if resp.EstimateBits != nanBits {
				r.failf("serve-shed-wellformed", "shed %s carries estimate bits %#x, want NaN",
					resp.ID, resp.EstimateBits)
			}
		}
		if resp.Status == serve.StatusDegraded {
			r.check()
			if resp.Reason == "" {
				r.failf("serve-shed-wellformed", "degraded %s has no reason", resp.ID)
			}
		}
		if resp.CacheHit || resp.Coalesced {
			r.check()
			if resp.Charged != 0 {
				r.failf("serve-free-riders", "%s is a cache hit/coalesced follower yet charged %d",
					resp.ID, resp.Charged)
			}
		}
		r.check()
		if resp.Charged < 0 || resp.Charged > resp.Budget {
			r.failf("serve-budget-bound", "%s charged %d outside [0, granted %d]",
				resp.ID, resp.Charged, resp.Budget)
		}
		chargedByTenant[resp.Tenant] += resp.Charged

		if tr.OfflineBits != nil {
			if bits, ok := tr.OfflineBits[resp.ID]; ok {
				r.check()
				if resp.EstimateBits != bits {
					r.failf("serve-bit-identity", "%s returned bits %#x, offline run produced %#x",
						resp.ID, resp.EstimateBits, bits)
				}
				if cost, ok := tr.OfflineCost[resp.ID]; ok {
					r.check()
					if resp.Cost != cost {
						r.failf("serve-bit-identity", "%s cost %d, offline run cost %d",
							resp.ID, resp.Cost, cost)
					}
				}
			}
		}
	}

	for tenant, charged := range chargedByTenant {
		quota, ok := tr.Quota[tenant]
		if !ok {
			continue
		}
		r.check()
		if charged > quota {
			r.failf("serve-quota", "tenant %s charged %d beyond quota %d", tenant, charged, quota)
		}
	}

	// The ledger's committed pool must equal the sum of charges, per
	// account. Build chargedByUnit indexed by account id.
	var chargedByUnit []int
	if tr.Account != nil {
		chargedByUnit = make([]int, len(tr.Ledger.Accounts))
		for tenant, charged := range chargedByTenant {
			if id, ok := tr.Account[tenant]; ok && id >= 0 && id < len(chargedByUnit) {
				chargedByUnit[id] += charged
			}
		}
	}
	r.Merge(a.CheckLedger(tr.Ledger, chargedByUnit))
	return r
}
