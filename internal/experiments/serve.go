package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/query"
	"mba/internal/serve"
	"mba/internal/stats"
	"mba/internal/workload"
)

// serveTier is one load level of the service sweep: a request count
// and a mean virtual inter-arrival gap, optionally under injected
// faults. Gaps are chosen against the ~5s-per-call Twitter preset: an
// 800-call request is ~4000 virtual seconds of busy time, so the calm
// tier arrives well under the four workers' service rate and the
// overload tier arrives an order of magnitude above it.
type serveTier struct {
	name    string
	n       int
	gap     time.Duration
	hotFrac float64
	faults  api.Faults
	// expectSheds: the shed-don't-collapse tier must actually shed and
	// degrade; the calm tiers must not be forced to.
	expectSheds bool
}

func serveTiers(seed int64) []serveTier {
	return []serveTier{
		{name: "calm", n: 24, gap: 4000 * time.Second, hotFrac: 0.7},
		{name: "busy", n: 36, gap: 1200 * time.Second, hotFrac: 0.7},
		{name: "overload", n: 60, gap: 40 * time.Second, hotFrac: 0.5, expectSheds: true},
		{name: "faults", n: 24, gap: 4000 * time.Second, hotFrac: 0.7, faults: api.Faults{
			TransientProb:   0.08,
			RateLimitProb:   0.04,
			OutageMeanGap:   5000,
			OutageLength:    20,
			SlowCallProb:    0.05,
			SlowCallLatency: 2 * time.Second,
			TruncateProb:    0.02,
			PrivateProb:     0.05,
			Seed:            seed,
		}},
	}
}

// ServeRecord is the deterministic per-tier telemetry ServeSweep emits
// as BENCH_serve.json.
type ServeRecord struct {
	Tier         string
	Requests     int
	Admitted     int
	Ok           int
	Degraded     int
	Shed         int
	Errors       int
	ShedBy       map[string]int
	CacheHits    int
	Resumed      int
	BreakerTrips int
	TotalCharged int
	TotalCost    int
	OfflineRuns  int
	P99SojournNs int64
	MaxSojournNs int64
	SojournBound int64
	AuditChecks  int
	AuditOK      bool
}

// ServeSweep drives the multi-tenant estimation service through rising
// load tiers — calm, busy, overload, and a fault storm — with a
// seed-deterministic request mix, and audits every tier against the
// serving contract: no silent drops, free well-formed sheds, conserved
// ledgers, per-tenant quotas respected, and executed responses
// bit-identical to offline runs of the same plan (the oracle is
// recomputed here, independently of the service's own cache). The
// overload tier must shed rather than collapse: nonzero sheds AND
// nonzero completions AND the p99 admitted sojourn bounded by the
// backlog watermark times the slowest single request.
func ServeSweep(opts Options) (Table, []ServeRecord, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, nil, err
	}
	// Quotas derive from the sweep budget: gold is provisioned at the
	// full budget with double fair-share weight, silver at half, bronze
	// at a quarter.
	quota := opts.Budget
	tenants := []serve.TenantConfig{
		{Name: "gold", Quota: quota, Weight: 2, Depth: 16},
		{Name: "silver", Quota: quota / 2, Weight: 1, Depth: 16},
		{Name: "bronze", Quota: quota / 4, Weight: 1, Depth: 16},
	}
	quotaOf := map[string]int{}
	names := make([]string, len(tenants))
	for i, tc := range tenants {
		quotaOf[tc.Name] = tc.Quota
		names[i] = tc.Name
	}

	t := Table{
		ID:    "serve",
		Title: "mba-serve under rising load: fair admission, shed-don't-collapse, bit-identical answers (virtual time)",
		Columns: []string{"tier", "requests", "admitted", "ok", "degraded", "shed", "cache",
			"resumed", "p99 sojourn", "audit"},
	}

	aud := audit.Auditor{}
	var violations []string
	var records []ServeRecord
	const workers = 4

	for ti, tier := range serveTiers(opts.Seed) {
		items, err := workload.Mix(workload.MixConfig{
			Seed:      opts.Seed*1000 + int64(ti),
			N:         tier.n,
			Tenants:   names,
			HotFrac:   tier.hotFrac,
			MeanGapNs: tier.gap.Nanoseconds(),
		})
		if err != nil {
			return t, nil, err
		}
		reqs := make([]serve.Request, len(items))
		for i, it := range items {
			reqs[i] = serve.Request{
				Tenant:    it.Tenant,
				Query:     it.Query,
				Budget:    it.Budget,
				ArrivalNs: it.ArrivalNs,
			}
		}

		svc, err := serve.New(serve.Config{
			Platform: p,
			Faults:   tier.faults,
			Tenants:  tenants,
			Workers:  workers,
		})
		if err != nil {
			return t, nil, err
		}
		resps := svc.Play(reqs)
		met, ledger := svc.Snapshot()

		// Recompute the offline oracle for every executed response:
		// same query, algorithm, granted budget, seed, deadline
		// headroom, and fault profile, run uninterrupted outside the
		// service. Memoised — cache hits repeat plans by construction.
		offlineBits := map[string]uint64{}
		offlineCost := map[string]int{}
		type planKey struct {
			q, algo string
			budget  int
			seed    int64
		}
		memoRes := map[planKey][2]uint64{}
		offlineRuns := 0
		for _, resp := range resps {
			if resp.Status != serve.StatusOK && resp.Status != serve.StatusDegraded {
				continue
			}
			if resp.DeadlineLeftNs != 0 {
				continue // deadline headroom depends on queueing, not part of this oracle
			}
			q, err := query.ParseQuery(resp.Query)
			if err != nil {
				return t, nil, fmt.Errorf("serve: response %s has unparsable query: %w", resp.ID, err)
			}
			key := planKey{resp.Query, resp.Algo, resp.Budget, resp.Seed}
			if _, ok := memoRes[key]; !ok {
				res, err := serve.RunOffline(serve.OfflineSpec{
					Platform: p,
					Faults:   tier.faults,
					Query:    q,
					Algo:     resp.Algo,
					Budget:   resp.Budget,
					Seed:     resp.Seed,
				})
				if err != nil {
					// The service reported success for this plan; the
					// oracle failing is itself a divergence.
					violations = append(violations,
						fmt.Sprintf("%s/%s: offline oracle failed: %v", tier.name, resp.ID, err))
					continue
				}
				memoRes[key] = [2]uint64{math.Float64bits(res.Estimate), uint64(res.Cost)}
				offlineRuns++
			}
			pair := memoRes[key]
			offlineBits[resp.ID] = pair[0]
			offlineCost[resp.ID] = int(pair[1])
		}

		accountOf := map[string]int{}
		for _, tc := range tenants {
			if id, ok := svc.Account(tc.Name); ok {
				accountOf[tc.Name] = id
			}
		}
		rep := aud.CheckService(audit.ServiceTrace{
			Requests:    reqs,
			Responses:   resps,
			Ledger:      ledger,
			Quota:       quotaOf,
			Account:     accountOf,
			OfflineBits: offlineBits,
			OfflineCost: offlineCost,
		})
		for _, v := range rep.Violations {
			violations = append(violations, fmt.Sprintf("%s: %s", tier.name, v))
		}

		rec := ServeRecord{
			Tier:         tier.name,
			Requests:     len(resps),
			Admitted:     met.Admitted,
			Ok:           met.Ok,
			Degraded:     met.Degraded,
			Shed:         met.Shed,
			Errors:       met.Errors,
			ShedBy:       met.ShedBy,
			CacheHits:    met.CacheHits,
			Resumed:      met.Resumed,
			BreakerTrips: met.BreakerTrips,
			OfflineRuns:  offlineRuns,
			AuditChecks:  rep.Checks,
			AuditOK:      rep.OK(),
		}

		// Shed-don't-collapse: the p99 sojourn (arrival to completion,
		// virtual time) of admitted requests must stay within what the
		// bounded backlog allows — the watermark depth of maximal
		// requests draining through the workers, plus the request's own
		// service time. An unbounded queue would blow through this.
		var sojourns []float64
		var maxBusy int64
		for i, resp := range resps {
			rec.TotalCharged += resp.Charged
			rec.TotalCost += resp.Cost
			if resp.Status == serve.StatusOK || resp.Status == serve.StatusDegraded {
				sj := resp.DoneNs - reqs[i].ArrivalNs
				sojourns = append(sojourns, float64(sj))
				if sj > rec.MaxSojournNs {
					rec.MaxSojournNs = sj
				}
				if resp.BusyNs > maxBusy {
					maxBusy = resp.BusyNs
				}
			}
		}
		if len(sojourns) > 0 {
			p99, err := stats.Quantile(sojourns, 0.99)
			if err != nil {
				return t, nil, err
			}
			rec.P99SojournNs = int64(p99)
			shedDepth := int64(4 * workers) // Config default watermark
			rec.SojournBound = (shedDepth/workers + 2) * maxBusy
			if rec.P99SojournNs > rec.SojournBound {
				violations = append(violations, fmt.Sprintf(
					"%s: queue collapse: p99 sojourn %s exceeds backlog bound %s",
					tier.name, time.Duration(rec.P99SojournNs), time.Duration(rec.SojournBound)))
			}
		}
		if tier.expectSheds {
			if rec.Shed == 0 {
				violations = append(violations, fmt.Sprintf("%s: overload tier shed nothing", tier.name))
			}
			if rec.Degraded == 0 {
				violations = append(violations, fmt.Sprintf("%s: overload tier produced no degraded partials", tier.name))
			}
			if rec.Ok == 0 {
				violations = append(violations, fmt.Sprintf("%s: overload tier collapsed: no completions", tier.name))
			}
		}

		audCell := fmt.Sprintf("ok(%d)", rep.Checks)
		if !rep.OK() {
			audCell = fmt.Sprintf("FAIL(%d)", len(rep.Violations))
		}
		t.Rows = append(t.Rows, []string{
			tier.name,
			fmt.Sprintf("%d", rec.Requests),
			fmt.Sprintf("%d", rec.Admitted),
			fmt.Sprintf("%d", rec.Ok),
			fmt.Sprintf("%d", rec.Degraded),
			fmt.Sprintf("%d", rec.Shed),
			fmt.Sprintf("%d", rec.CacheHits),
			fmt.Sprintf("%d", rec.Resumed),
			time.Duration(rec.P99SojournNs).Round(time.Second).String(),
			audCell,
		})
		records = append(records, rec)
		opts.logf("serve/%s: %d reqs, %d ok, %d degraded, %d shed, %d cache hits, %d offline oracle runs",
			tier.name, rec.Requests, rec.Ok, rec.Degraded, rec.Shed, rec.CacheHits, offlineRuns)
	}

	if len(violations) > 0 {
		sort.Strings(violations)
		return t, records, fmt.Errorf("serve: %d contract violations; first: %s",
			len(violations), violations[0])
	}
	return t, records, nil
}

// Serve adapts ServeSweep to the bench runner signature, discarding
// the records (cmd/mba-bench re-runs via its JSON-writing wrapper).
func Serve(opts Options) (Table, error) {
	t, _, err := ServeSweep(opts)
	return t, err
}
