package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
)

// BudgetPath is the flow-sensitive upgrade of budgetflow's ledger
// rules. budgetflow checks shapes (errors propagate, clients are
// ledger-bound); budgetpath checks *paths*: every api.Ledger.Reserve
// grant must be settled — Commit, Refund, or Release — on every CFG
// path out of the function, and no charged api.Client call may execute
// on a path where the reservation itself failed (Reserve grants zero
// credits alongside its error, so spending there bypasses admission).
//
// The analysis tracks one token per Reserve call site through the
// forward dataflow. A token dies when the reservation is settled on the
// same ledger, or when the granted amount escapes the function's
// control (stored into a field, returned, passed to another call) —
// whoever received the grant owns the settlement then, as in
// api.Client.ledgerCommit where the grant folds into c.lreserved and
// ReleaseLedger settles it later. Path sensitivity comes from edge
// refinement on `err != nil`/`err == nil` branches of the Reserve
// error: the failure path carries no credits, so it owes no settlement
// but must not charge.
var BudgetPath = &Analyzer{
	Name: "budgetpath",
	Doc: "every ledger reservation is committed/refunded/released on all paths, " +
		"and no charged call runs on a failed-reservation path",
	Run: runBudgetPath,
}

// ledgerSettleMethods settle an outstanding reservation on the ledger.
var ledgerSettleMethods = map[string]bool{
	"Commit": true, "Refund": true, "Release": true,
}

// budgetTok is one Reserve call's outstanding reservation.
type budgetTok struct {
	pos token.Pos
	// grantObj/errObj are the `grant, err := led.Reserve(...)` results;
	// nil once reassigned (tracking ends, the obligation remains).
	grantObj types.Object
	errObj   types.Object
	// recvRoot is the ledger variable the reservation lives on.
	recvRoot types.Object
	// failed marks the path where Reserve returned an error (and
	// therefore granted zero credits).
	failed bool
}

// budgetState maps Reserve sites to their live tokens.
type budgetState struct {
	toks map[token.Pos]budgetTok
}

func (s *budgetState) Clone() FlowState {
	c := &budgetState{toks: make(map[token.Pos]budgetTok, len(s.toks))}
	for k, v := range s.toks {
		c.toks[k] = v
	}
	return c
}

func (s *budgetState) JoinFrom(src FlowState) bool {
	o := src.(*budgetState)
	changed := false
	for k, ov := range o.toks {
		cur, ok := s.toks[k]
		if !ok {
			s.toks[k] = ov
			changed = true
			continue
		}
		// Failure is a path property: only paths where EVERY incoming
		// branch saw the error keep the exemption.
		merged := cur
		merged.failed = cur.failed && ov.failed
		if merged != cur {
			s.toks[k] = merged
			changed = true
		}
	}
	return changed
}

// sortedTokPos returns the live token positions in ascending order, for
// deterministic iteration.
func (s *budgetState) sortedTokPos() []token.Pos {
	out := make([]token.Pos, 0, len(s.toks))
	for p := range s.toks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// budgetCtx is the per-function analysis. It collects diagnostics for
// charged-on-failed-path violations during a replay pass (pass set),
// mirroring taintCtx's two-phase structure.
type budgetCtx struct {
	prog *Program
	pkg  *Package
	pass *Pass // nil while solving; set during replay to report
	// reported dedupes charged-on-failed-path reports across blocks.
	reported map[string]bool
	// benign marks identifier uses that do NOT count as grant escapes:
	// comparison operands and settlement-call arguments.
	benign map[*ast.Ident]bool
}

// markBenign precomputes the benign-use set over the function body:
// idents inside comparison operands (`grant < n`) and inside the
// argument lists of ledger settlement calls (`l.Refund(id, grant)`)
// keep the obligation in this function; any other use is an escape.
func (b *budgetCtx) markBenign(body ast.Node) {
	b.benign = map[*ast.Ident]bool{}
	mark := func(e ast.Expr) {
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				b.benign[id] = true
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.BinaryExpr:
			switch x.Op {
			case token.EQL, token.NEQ, token.LSS, token.GTR, token.LEQ, token.GEQ:
				mark(x.X)
				mark(x.Y)
			}
		case *ast.CallExpr:
			if b.isLedgerCall(x, ledgerSettleMethods) != nil {
				for _, a := range x.Args {
					mark(a)
				}
			}
		}
		return true
	})
}

func (b *budgetCtx) Direction() FlowDirection { return FlowForward }
func (b *budgetCtx) Boundary() FlowState      { return &budgetState{toks: map[token.Pos]budgetTok{}} }

func (b *budgetCtx) Transfer(n ast.Node, f FlowState) FlowState {
	st := f.(*budgetState)
	// Order matters: uses of an existing grant in this node (escapes,
	// settlements, charged calls) happen before any new token this node
	// creates. For assignments, a plain-ident LHS is a reassignment
	// (handled by assign), not a value escape, so only the RHS and
	// composite LHS expressions are scanned.
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, rhs := range as.Rhs {
			b.scanNode(rhs, st)
		}
		for _, lhs := range as.Lhs {
			if _, plain := unparen(lhs).(*ast.Ident); !plain {
				b.scanNode(lhs, st)
			}
		}
		b.assign(as, st)
		return st
	}
	// The range head carries the whole *ast.RangeStmt; only the ranged
	// operand executes here — the body belongs to its own blocks, so
	// scanning it from the head would settle tokens on paths where the
	// body never runs (an empty slice skips straight to the exit edge).
	if rs, ok := n.(*ast.RangeStmt); ok {
		b.scanNode(rs.X, st)
		b.retireRangeVars(rs, st)
		return st
	}
	b.scanNode(n, st)
	return st
}

// retireRangeVars ends grant/err tracking for variables reassigned by
// the range clause (`for grant = range xs`); the obligation remains.
func (b *budgetCtx) retireRangeVars(rs *ast.RangeStmt, st *budgetState) {
	assigned := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if e == nil {
			continue
		}
		if id, ok := unparen(e).(*ast.Ident); ok && id.Name != "_" {
			if obj := b.pkg.Info.ObjectOf(id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	if len(assigned) == 0 {
		return
	}
	for _, p := range st.sortedTokPos() {
		tok := st.toks[p]
		changed := false
		if tok.grantObj != nil && assigned[tok.grantObj] {
			tok.grantObj, changed = nil, true
		}
		if tok.errObj != nil && assigned[tok.errObj] {
			tok.errObj, changed = nil, true
		}
		if changed {
			st.toks[p] = tok
		}
	}
}

// RefineEdge narrows tokens along `err != nil` / `err == nil` branches
// of a Reserve error.
func (b *budgetCtx) RefineEdge(e *Edge, f FlowState) FlowState {
	st := f.(*budgetState)
	obj, errIsNil := b.nilCheckOf(e)
	if obj == nil {
		return st
	}
	for _, p := range st.sortedTokPos() {
		tok := st.toks[p]
		if tok.errObj == nil || tok.errObj != obj {
			continue
		}
		tok.failed = !errIsNil
		st.toks[p] = tok
	}
	return st
}

// nilCheckOf decodes an edge guarded by `x == nil` or `x != nil`,
// returning x's object and whether x is nil along this edge.
func (b *budgetCtx) nilCheckOf(e *Edge) (types.Object, bool) {
	be, ok := unparen(e.Cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false
	}
	x, y := unparen(be.X), unparen(be.Y)
	if isNilIdent(b.pkg.Info, x) {
		x, y = y, x
	}
	if !isNilIdent(b.pkg.Info, y) {
		return nil, false
	}
	id, ok := x.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := b.pkg.Info.ObjectOf(id)
	if obj == nil {
		return nil, false
	}
	// (x == nil, Branch=true) and (x != nil, Branch=false) mean nil.
	return obj, (be.Op == token.EQL) == e.Branch
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.ObjectOf(id).(*types.Nil)
	return isNil
}

// assign creates a token for `grant, err := led.Reserve(id, n)` and
// retires stale grant/err object bindings on reassignment.
func (b *budgetCtx) assign(as *ast.AssignStmt, st *budgetState) {
	// Reassigning a tracked grant or err variable ends its association
	// with the token; the settlement obligation itself remains.
	assigned := map[types.Object]bool{}
	for _, lhs := range as.Lhs {
		if id, ok := unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
			if obj := b.pkg.Info.ObjectOf(id); obj != nil {
				assigned[obj] = true
			}
		}
	}
	isReserve := len(as.Rhs) == 1 && b.isLedgerCall(as.Rhs[0], map[string]bool{"Reserve": true}) != nil
	for _, p := range st.sortedTokPos() {
		tok := st.toks[p]
		changed := false
		if tok.grantObj != nil && assigned[tok.grantObj] {
			tok.grantObj, changed = nil, true
		}
		if tok.errObj != nil && assigned[tok.errObj] {
			tok.errObj, changed = nil, true
		}
		if changed {
			st.toks[p] = tok
		}
	}
	if !isReserve {
		return
	}
	call := unparen(as.Rhs[0]).(*ast.CallExpr)
	tok := budgetTok{pos: call.Pos(), recvRoot: b.isLedgerCall(as.Rhs[0], map[string]bool{"Reserve": true})}
	if len(as.Lhs) == 2 {
		if id, ok := unparen(as.Lhs[0]).(*ast.Ident); ok && id.Name != "_" {
			tok.grantObj = b.pkg.Info.ObjectOf(id)
		}
		if id, ok := unparen(as.Lhs[1]).(*ast.Ident); ok && id.Name != "_" {
			tok.errObj = b.pkg.Info.ObjectOf(id)
		}
	}
	st.toks[tok.pos] = tok
}

// isLedgerCall matches a call to api.Ledger.<method in names> and
// returns the root object of the receiver ledger (nil on no match).
func (b *budgetCtx) isLedgerCall(e ast.Expr, names map[string]bool) types.Object {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	if _, ok := methodOnInfo(b.pkg.Info, call, "api", "Ledger", names); !ok {
		return nil
	}
	sel := unparen(call.Fun).(*ast.SelectorExpr)
	if obj := rootObjInfo(b.pkg.Info, sel.X); obj != nil {
		return obj
	}
	// Unnameable ledger receiver (call result, map entry): return a
	// sentinel non-nil object so settlement still discharges broadly.
	return universeNil
}

var universeNil = types.Universe.Lookup("nil")

// scanNode applies call effects (settle, escape, charged-on-failed) of
// every call and grant use inside n, skipping nested function literals.
func (b *budgetCtx) scanNode(n ast.Node, st *budgetState) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			b.oneCall(x, st)
		case *ast.Ident:
			b.grantUse(x, st)
		}
		return true
	})
}

// oneCall settles tokens on ledger settlement calls and reports charged
// calls on failed-reservation paths.
func (b *budgetCtx) oneCall(call *ast.CallExpr, st *budgetState) {
	if root := b.isLedgerCall(call, ledgerSettleMethods); root != nil {
		pt := b.prog.PointsToInfo()
		for _, p := range st.sortedTokPos() {
			tok := st.toks[p]
			// A settlement discharges a token when it runs against the
			// same ledger variable, when either side is unresolvable, or
			// — alias-sharpened — when points-to says the two receiver
			// roots may denote the same ledger object (`led2 := led`).
			if tok.recvRoot == root || tok.recvRoot == universeNil || root == universeNil ||
				(pt != nil && pt.MayAliasVars(tok.recvRoot, root)) {
				delete(st.toks, p)
			}
		}
		return
	}
	charged := false
	if _, ok := chargedClientCall(b.pkg.Info, call); ok {
		charged = true
	} else {
		for _, g := range b.prog.CalleesOf(call) {
			if b.prog.SummaryOf(g).IncursCost {
				charged = true
				break
			}
		}
	}
	if !charged || b.pass == nil {
		return
	}
	for _, p := range st.sortedTokPos() {
		tok := st.toks[p]
		if !tok.failed {
			continue
		}
		rp := b.pass.Fset.Position(tok.pos)
		key := b.pass.Fset.Position(call.Pos()).String() + "\x00" + rp.String()
		if b.reported[key] {
			continue
		}
		b.reported[key] = true
		b.pass.Reportf(call.Pos(),
			"charged api.Client call on a path where the ledger reservation at %s:%d failed; a failed Reserve grants no credits, so this spend bypasses admission",
			filepath.Base(rp.Filename), rp.Line)
	}
}

// grantUse discharges a token whose granted amount escapes: any use of
// the grant variable outside comparisons and settlement arguments hands
// the credits to another owner (a field, a return value, a callee),
// who then owns the settlement — api.Client.ledgerCommit folding the
// grant into c.lreserved is the exemplar.
func (b *budgetCtx) grantUse(id *ast.Ident, st *budgetState) {
	obj := b.pkg.Info.Uses[id]
	if obj == nil || b.benign[id] {
		return
	}
	for _, p := range st.sortedTokPos() {
		tok := st.toks[p]
		if tok.grantObj == nil || tok.grantObj != obj {
			continue
		}
		delete(st.toks, p)
	}
}

func runBudgetPath(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	for _, f := range prog.Funcs {
		if f.Pkg.Types != pass.Pkg || f.Body == nil {
			continue
		}
		cfg := prog.CFGOf(f)
		solveCtx := &budgetCtx{prog: prog, pkg: f.Pkg}
		solveCtx.markBenign(f.Body)
		sol := SolveDataflow(cfg, solveCtx)

		// Replay with reporting enabled: charged-on-failed-path fires as
		// the transfer revisits each block from its converged in-state.
		replay := &budgetCtx{prog: prog, pkg: f.Pkg, pass: pass, reported: map[string]bool{}}
		replay.benign = solveCtx.benign
		for _, blk := range cfg.Blocks {
			in := sol.In[blk]
			if in == nil {
				continue
			}
			st := in.Clone()
			for _, n := range blk.Nodes {
				st = replay.Transfer(n, st)
			}
		}

		// Leak check: an unsettled, unfailed token reaching a non-panic
		// exit edge owes the pool its credits.
		leaked := map[token.Pos]bool{}
		for _, e := range cfg.Exit.Preds {
			if e.Panic {
				continue
			}
			out := sol.Out[e.From]
			if out == nil {
				continue
			}
			st := out.(*budgetState)
			for _, p := range st.sortedTokPos() {
				tok := st.toks[p]
				if tok.failed || leaked[p] {
					continue
				}
				leaked[p] = true
				pass.Reportf(p,
					"ledger reservation can reach a return without Commit/Refund/Release on some path; settle the grant on every path (Release in a defer is the usual fix)")
			}
		}
	}
	return nil
}
