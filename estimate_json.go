package mba

import (
	"encoding/json"
	"time"

	"mba/internal/serve"
)

// Estimate.Value is NaN when the budget was too small to form an
// estimate, and trajectory points can carry non-finite intermediate
// estimates; encoding/json rejects those outright. The custom codecs
// below swap the float fields for serve.Float, which encodes NaN and
// ±Inf as quoted sentinels, so Estimate documents always round-trip.

// Float is the NaN/Inf-safe JSON float used across the public result
// types, re-exported from the serving layer.
type Float = serve.Float

// estimateWire mirrors Estimate field-for-field with JSON-safe floats.
// Keeping it explicit (rather than alias-embedding tricks) makes the
// wire schema auditable in one place.
type estimateWire struct {
	Value           Float
	Cost            int
	Samples         int
	VirtualDuration int64
	Trajectory      []trajectoryWire
	Degraded        bool
	Retries         int
	RateLimitHits   int
	Healed          int
	VanishedSeen    int
	WalkersRun      int
	WalkersShed     int
	WatchdogTrips   int
	ThrottleWait    int64
	Makespan        int64
	Parks           int
	DrainedSteps    int
	Restarts        int
	RecoveredCost   int
	CheckpointSaves int
}

type trajectoryWire struct {
	Cost     int
	Estimate Float
}

// MarshalJSON encodes the estimate with NaN/Inf-safe float fields.
func (e Estimate) MarshalJSON() ([]byte, error) {
	w := estimateWire{
		Value:           Float(e.Value),
		Cost:            e.Cost,
		Samples:         e.Samples,
		VirtualDuration: int64(e.VirtualDuration),
		Degraded:        e.Degraded,
		Retries:         e.Retries,
		RateLimitHits:   e.RateLimitHits,
		Healed:          e.Healed,
		VanishedSeen:    e.VanishedSeen,
		WalkersRun:      e.WalkersRun,
		WalkersShed:     e.WalkersShed,
		WatchdogTrips:   e.WatchdogTrips,
		ThrottleWait:    int64(e.ThrottleWait),
		Makespan:        int64(e.Makespan),
		Parks:           e.Parks,
		DrainedSteps:    e.DrainedSteps,
		Restarts:        e.Restarts,
		RecoveredCost:   e.RecoveredCost,
		CheckpointSaves: e.CheckpointSaves,
	}
	if e.Trajectory != nil {
		w.Trajectory = make([]trajectoryWire, len(e.Trajectory))
		for i, p := range e.Trajectory {
			w.Trajectory[i] = trajectoryWire{Cost: p.Cost, Estimate: Float(p.Estimate)}
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an estimate produced by MarshalJSON.
func (e *Estimate) UnmarshalJSON(data []byte) error {
	var w estimateWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*e = Estimate{
		Value:           float64(w.Value),
		Cost:            w.Cost,
		Samples:         w.Samples,
		VirtualDuration: time.Duration(w.VirtualDuration),
		Degraded:        w.Degraded,
		Retries:         w.Retries,
		RateLimitHits:   w.RateLimitHits,
		Healed:          w.Healed,
		VanishedSeen:    w.VanishedSeen,
		WalkersRun:      w.WalkersRun,
		WalkersShed:     w.WalkersShed,
		WatchdogTrips:   w.WatchdogTrips,
		ThrottleWait:    time.Duration(w.ThrottleWait),
		Makespan:        time.Duration(w.Makespan),
		Parks:           w.Parks,
		DrainedSteps:    w.DrainedSteps,
		Restarts:        w.Restarts,
		RecoveredCost:   w.RecoveredCost,
		CheckpointSaves: w.CheckpointSaves,
	}
	if w.Trajectory != nil {
		e.Trajectory = make([]TrajectoryPoint, len(w.Trajectory))
		for i, p := range w.Trajectory {
			e.Trajectory[i] = TrajectoryPoint{Cost: p.Cost, Estimate: float64(p.Estimate)}
		}
	}
	return nil
}

// MarshalJSON encodes one convergence point with a NaN/Inf-safe
// estimate field.
func (p TrajectoryPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(trajectoryWire{Cost: p.Cost, Estimate: Float(p.Estimate)})
}

// UnmarshalJSON decodes one convergence point.
func (p *TrajectoryPoint) UnmarshalJSON(data []byte) error {
	var w trajectoryWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*p = TrajectoryPoint{Cost: w.Cost, Estimate: float64(w.Estimate)}
	return nil
}
