package store

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"math"
	"os"
	"path/filepath"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/fleet"
)

// Typed failure modes of the durable store.
var (
	// ErrNoCheckpoint reports that no checkpoint file exists at all —
	// the run starts fresh.
	ErrNoCheckpoint = errors.New("store: no checkpoint on disk")
	// ErrCorruptCheckpoint reports that checkpoint data exists but no
	// generation survived validation (magic, length, checksum, or
	// decode). Load falls back to the older generation before giving
	// this up.
	ErrCorruptCheckpoint = errors.New("store: corrupt checkpoint")
	// ErrCheckpointMismatch reports an intact checkpoint that belongs
	// to a different plan — schema version, algorithm, query, seed,
	// walker plan, or fault profile differs from the resuming options.
	// Mirrors the fleet's mismatched-plan rejection.
	ErrCheckpointMismatch = errors.New("store: checkpoint does not match the resuming plan")
)

// PlanKey pins a durable checkpoint to the logical run that wrote it.
// Resuming under a different plan would silently blend two different
// estimations, so Check rejects any field drift. Budget is
// deliberately absent: continuing the same plan with a bigger budget
// is the whole point of resuming (the fleet path instead pins the
// planned unit count, which budget changes would alter).
type PlanKey struct {
	// Algo is the facade algorithm name (e.g. "MA-SRW").
	Algo string `json:"algo,omitempty"`
	// Preset is the API preset name.
	Preset string `json:"preset,omitempty"`
	// Query is the rendered query text.
	Query string `json:"query,omitempty"`
	// Seed is the walk seed.
	Seed int64 `json:"seed,omitempty"`
	// Units is the planned walker-unit count (0 = single-walker path).
	Units int `json:"units,omitempty"`
	// IntervalHours is the fixed level interval (0 = algorithm picks).
	IntervalHours int `json:"interval_hours,omitempty"`
	// ChurnRate is the churn overlay rate.
	ChurnRate float64 `json:"churn_rate,omitempty"`
	// Faults is a rendered signature of the fault profile.
	Faults string `json:"faults,omitempty"`
	// Cooperative is the scheduling mode.
	Cooperative bool `json:"cooperative,omitempty"`
}

// Check validates that a stored plan matches the resuming one,
// returning a typed ErrCheckpointMismatch naming the first field that
// drifted.
func (k PlanKey) Check(want PlanKey) error {
	mismatch := func(field, got, exp string) error {
		return fmt.Errorf("%w: %s is %q, resuming options say %q", ErrCheckpointMismatch, field, got, exp)
	}
	if k.Algo != want.Algo {
		return mismatch("algo", k.Algo, want.Algo)
	}
	if k.Preset != want.Preset {
		return mismatch("preset", k.Preset, want.Preset)
	}
	if k.Query != want.Query {
		return mismatch("query", k.Query, want.Query)
	}
	if k.Seed != want.Seed {
		return mismatch("seed", fmt.Sprint(k.Seed), fmt.Sprint(want.Seed))
	}
	if k.Units != want.Units {
		return mismatch("units", fmt.Sprint(k.Units), fmt.Sprint(want.Units))
	}
	if k.IntervalHours != want.IntervalHours {
		return mismatch("interval_hours", fmt.Sprint(k.IntervalHours), fmt.Sprint(want.IntervalHours))
	}
	if k.ChurnRate != want.ChurnRate {
		return mismatch("churn_rate", fmt.Sprint(k.ChurnRate), fmt.Sprint(want.ChurnRate))
	}
	if k.Faults != want.Faults {
		return mismatch("faults", k.Faults, want.Faults)
	}
	if k.Cooperative != want.Cooperative {
		return mismatch("cooperative", fmt.Sprint(k.Cooperative), fmt.Sprint(want.Cooperative))
	}
	return nil
}

// RunSummary is the durable record of a finished run, enough for a
// resume that discovers the run already completed to answer without
// spending a single call. The estimate travels as IEEE-754 bits
// (NaN-safe, bit-exact).
type RunSummary struct {
	EstimateBits uint64         `json:"estimate_bits"`
	Cost         int            `json:"cost"`
	Samples      int            `json:"samples"`
	Stats        api.Stats      `json:"stats"`
	Heal         core.HealStats `json:"heal"`
	Degraded     bool           `json:"degraded,omitempty"`
	// VirtualNs carries the fleet's per-walker virtual duration (the
	// max over units, not derivable from the summed stats); zero on
	// the single-walker path, where VirtualOf(preset, Stats) holds.
	VirtualNs     int64 `json:"virtual_ns,omitempty"`
	WalkersRun    int   `json:"walkers_run,omitempty"`
	WalkersShed   int   `json:"walkers_shed,omitempty"`
	WatchdogTrips int   `json:"watchdog_trips,omitempty"`
	MakespanNs    int64 `json:"makespan_ns,omitempty"`
	Parks         int   `json:"parks,omitempty"`
	DrainedSteps  int   `json:"drained_steps,omitempty"`
}

// Estimate returns the summary's estimate value.
func (s RunSummary) Estimate() float64 { return math.Float64frombits(s.EstimateBits) }

// SummaryOf records a single-walker core result.
func SummaryOf(res core.Result) RunSummary {
	return RunSummary{
		EstimateBits: math.Float64bits(res.Estimate),
		Cost:         res.Cost,
		Samples:      res.Samples,
		Stats:        res.Stats,
		Heal:         res.Heal,
		Degraded:     res.Degraded,
		DrainedSteps: res.DrainedSteps,
	}
}

// Snapshot is one durable generation: the plan it belongs to, recovery
// bookkeeping, and exactly one of a single-walker checkpoint or a
// fleet checkpoint — plus, once the run completes, its final summary.
type Snapshot struct {
	Plan PlanKey `json:"plan"`
	// Restarts counts process incarnations that wrote this lineage.
	Restarts int `json:"restarts,omitempty"`
	// RecoveredCost is the cumulative spent budget that restarts
	// inherited from disk instead of repaying.
	RecoveredCost int `json:"recovered_cost,omitempty"`
	// Walk is the single-walker checkpoint state.
	Walk *core.CheckpointState `json:"walk,omitempty"`
	// Fleet is the per-unit fleet checkpoint state.
	Fleet *fleet.CheckpointState `json:"fleet,omitempty"`
	// Final is present once the logical run finished.
	Final *RunSummary `json:"final,omitempty"`
}

// File format: an 60-byte header followed by the JSON payload.
//
//	offset  size  field
//	0       8     magic "MBASTOR1"
//	8       4     schema version (little-endian uint32)
//	12      8     generation sequence number (uint64)
//	20      8     payload length (uint64)
//	28      32    SHA-256 of bytes [0,28) ++ payload
//	60      n     JSON-encoded Snapshot
//
// The checksum covers the header prefix as well as the payload, so a
// single flipped bit ANYWHERE in the file — including the sequence
// number, which drives generation selection — fails validation.
const (
	storeMagic    = "MBASTOR1"
	schemaVersion = 1
	headerLen     = 8 + 4 + 8 + 8 + sha256.Size
)

// EncodeSnapshot serializes a snapshot into the on-disk format under
// the given generation sequence number.
func EncodeSnapshot(snap *Snapshot, seq uint64) ([]byte, error) {
	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, headerLen+len(payload))
	copy(buf[0:8], storeMagic)
	binary.LittleEndian.PutUint32(buf[8:12], schemaVersion)
	binary.LittleEndian.PutUint64(buf[12:20], seq)
	binary.LittleEndian.PutUint64(buf[20:28], uint64(len(payload)))
	copy(buf[headerLen:], payload)
	sum := checksum(buf)
	copy(buf[28:headerLen], sum[:])
	return buf, nil
}

// checksum hashes the header prefix (magic through payload length)
// together with the payload of an encoded snapshot.
func checksum(data []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(data[0:28])
	h.Write(data[headerLen:])
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// DecodeSnapshot validates and deserializes one on-disk generation.
// Any structural damage — short file, bad magic, truncated payload,
// checksum mismatch, undecodable JSON — returns ErrCorruptCheckpoint;
// an intact file from a different schema version returns
// ErrCheckpointMismatch. It never panics on arbitrary input (fuzzed).
func DecodeSnapshot(data []byte) (*Snapshot, uint64, error) {
	if len(data) < headerLen {
		return nil, 0, fmt.Errorf("%w: %d bytes, need at least the %d-byte header", ErrCorruptCheckpoint, len(data), headerLen)
	}
	if string(data[0:8]) != storeMagic {
		return nil, 0, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	seq := binary.LittleEndian.Uint64(data[12:20])
	plen := binary.LittleEndian.Uint64(data[20:28])
	if plen != uint64(len(data)-headerLen) {
		return nil, seq, fmt.Errorf("%w: payload length %d, file carries %d (torn write)", ErrCorruptCheckpoint, plen, len(data)-headerLen)
	}
	payload := data[headerLen:]
	sum := checksum(data)
	if string(sum[:]) != string(data[28:headerLen]) {
		return nil, seq, fmt.Errorf("%w: checksum mismatch", ErrCorruptCheckpoint)
	}
	if v := binary.LittleEndian.Uint32(data[8:12]); v != schemaVersion {
		return nil, seq, fmt.Errorf("%w: schema version %d, this build reads %d", ErrCheckpointMismatch, v, schemaVersion)
	}
	var snap Snapshot
	if err := json.Unmarshal(payload, &snap); err != nil {
		return nil, seq, fmt.Errorf("%w: undecodable payload: %w", ErrCorruptCheckpoint, err)
	}
	return &snap, seq, nil
}

// Stats counts the store's self-observed reliability events.
type Stats struct {
	// Saves is the number of generations durably written.
	Saves int
	// CorruptSlots counts slot reads that failed validation.
	CorruptSlots int
	// Fallbacks counts Loads that recovered by falling back to an
	// older intact generation after a newer slot failed validation.
	Fallbacks int
}

// Store persists snapshots under an A/B generation rotation: writes
// alternate between two slot files by sequence parity, each written
// tmp-first and atomically renamed into place, so the previous
// generation is never touched while the next one lands. A Store
// instance models one process lifetime; reopening the same base path
// resumes the rotation where the last instance left it.
type Store struct {
	fs    FS
	base  string
	seq   uint64
	stats Stats
}

// Open opens (or initializes) a durable store on the real filesystem,
// creating dir if needed and keeping its generations there.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return OpenFS(OSFS{}, filepath.Join(dir, "checkpoint"))
}

// OpenFS opens a store over an arbitrary FS; slot files are base+".a"
// and base+".b". The highest structurally-readable sequence number on
// disk seeds the rotation.
func OpenFS(fsys FS, base string) (*Store, error) {
	s := &Store{fs: fsys, base: base}
	for _, slot := range []string{s.slotA(), s.slotB()} {
		data, err := fsys.ReadFile(slot)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		if len(data) >= headerLen && string(data[0:8]) == storeMagic {
			if seq := binary.LittleEndian.Uint64(data[12:20]); seq > s.seq {
				s.seq = seq
			}
		}
	}
	return s, nil
}

func (s *Store) slotA() string { return s.base + ".a" }
func (s *Store) slotB() string { return s.base + ".b" }

// slotFor maps a sequence number onto the A/B rotation.
func (s *Store) slotFor(seq uint64) string {
	if seq%2 == 0 {
		return s.slotB()
	}
	return s.slotA()
}

// Save durably writes the snapshot as the next generation: encode,
// write to a temp file (fsynced), atomically rename over the older of
// the two slots. The newer slot is untouched, so a crash anywhere in
// here leaves the previous generation intact.
func (s *Store) Save(snap *Snapshot) error {
	seq := s.seq + 1
	buf, err := EncodeSnapshot(snap, seq)
	if err != nil {
		return err
	}
	slot := s.slotFor(seq)
	tmp := slot + ".tmp"
	if err := s.fs.WriteFile(tmp, buf); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, slot); err != nil {
		return err
	}
	s.seq = seq
	s.stats.Saves++
	return nil
}

// Load returns the newest intact generation. Both slots are read and
// validated; a damaged newer slot is detected by its checksum (or
// structure) and Load falls back to the older intact one, counting
// the event. ErrNoCheckpoint when neither slot exists,
// ErrCorruptCheckpoint when data exists but no generation validates,
// ErrCheckpointMismatch when the only intact data belongs to another
// schema version.
func (s *Store) Load() (*Snapshot, error) {
	var (
		best     *Snapshot
		bestSeq  uint64
		present  int
		corrupt  int
		mismatch error
	)
	for _, slot := range []string{s.slotA(), s.slotB()} {
		data, err := s.fs.ReadFile(slot)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return nil, err
		}
		present++
		snap, seq, derr := DecodeSnapshot(data)
		switch {
		case derr == nil:
			if best == nil || seq > bestSeq {
				best, bestSeq = snap, seq
			}
		case errors.Is(derr, ErrCheckpointMismatch):
			mismatch = derr
		default:
			corrupt++
			s.stats.CorruptSlots++
		}
	}
	if present == 0 {
		return nil, ErrNoCheckpoint
	}
	if best == nil {
		if mismatch != nil && corrupt == 0 {
			return nil, mismatch
		}
		return nil, fmt.Errorf("%w: no generation survived validation (%d slot(s) damaged)", ErrCorruptCheckpoint, corrupt)
	}
	if corrupt > 0 || mismatch != nil {
		s.stats.Fallbacks++
	}
	return best, nil
}

// Stats returns the store's reliability counters.
func (s *Store) Stats() Stats { return s.stats }

// DamageKind enumerates the deterministic storage faults the crash
// harness injects at crash points — fixed offsets, no randomness, so a
// sweep's fault schedule is exactly reproducible.
type DamageKind int

// Damage kinds.
const (
	// DamageNone leaves the store intact.
	DamageNone DamageKind = iota
	// DamageTorn truncates the newest generation mid-payload (a torn
	// write: the header's payload length no longer matches).
	DamageTorn
	// DamageBitFlip flips one bit in the middle of the newest
	// generation's payload (silent media corruption: structure intact,
	// checksum catches it).
	DamageBitFlip
	// DamageRemove deletes the newest generation file outright.
	DamageRemove
)

func (k DamageKind) String() string {
	switch k {
	case DamageNone:
		return "none"
	case DamageTorn:
		return "torn"
	case DamageBitFlip:
		return "bitflip"
	case DamageRemove:
		return "missing"
	default:
		return fmt.Sprintf("DamageKind(%d)", int(k))
	}
}

// DamageNewest applies the given fault to the newest on-disk
// generation (by header sequence number), returning whether anything
// was actually damaged. The harness calls this at crash points to
// prove the next Load detects the damage by checksum/structure and
// falls back to the previous generation.
func (s *Store) DamageNewest(kind DamageKind) (bool, error) {
	if kind == DamageNone {
		return false, nil
	}
	var (
		target    string
		targetSeq uint64
		found     bool
	)
	for _, slot := range []string{s.slotA(), s.slotB()} {
		data, err := s.fs.ReadFile(slot)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				continue
			}
			return false, err
		}
		var seq uint64
		if len(data) >= headerLen && string(data[0:8]) == storeMagic {
			seq = binary.LittleEndian.Uint64(data[12:20])
		}
		if !found || seq > targetSeq {
			target, targetSeq, found = slot, seq, true
		}
	}
	if !found {
		return false, nil
	}
	if kind == DamageRemove {
		return true, s.fs.Remove(target)
	}
	data, err := s.fs.ReadFile(target)
	if err != nil {
		return false, err
	}
	switch kind {
	case DamageTorn:
		cut := headerLen + (len(data)-headerLen)*3/5
		if cut >= len(data) {
			cut = len(data) / 2
		}
		data = data[:cut]
	case DamageBitFlip:
		off := headerLen + (len(data)-headerLen)/2
		if off >= len(data) {
			off = len(data) - 1
		}
		data[off] ^= 0x08
	}
	return true, s.fs.WriteFile(target, data)
}
