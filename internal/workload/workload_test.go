package workload

import (
	"testing"

	"mba/internal/query"
)

func TestKeywordCatalogComplete(t *testing.T) {
	names := make(map[string]bool)
	for _, k := range Keywords() {
		if names[k.Name] {
			t.Errorf("duplicate keyword %q", k.Name)
		}
		names[k.Name] = true
	}
	for _, k := range append(Table2Keywords(), Table3Keywords()...) {
		if !names[k] {
			t.Errorf("table keyword %q missing from catalog", k)
		}
	}
	for _, k := range []string{"privacy", "new york", "boston"} {
		if !names[k] {
			t.Errorf("figure keyword %q missing from catalog", k)
		}
	}
}

func TestConfigScales(t *testing.T) {
	small := Config(Test)
	bench := Config(Bench)
	large := Config(Large)
	if !(small.NumUsers < bench.NumUsers && bench.NumUsers < large.NumUsers) {
		t.Error("scales not ordered by size")
	}
	for _, c := range []struct {
		name string
		n    int
	}{{"test", small.HorizonDays}, {"bench", bench.HorizonDays}, {"large", large.HorizonDays}} {
		if c.n != HorizonDays {
			t.Errorf("%s horizon = %d, want %d", c.name, c.n, HorizonDays)
		}
	}
	if Test.String() != "test" || Bench.String() != "bench" || Large.String() != "large" {
		t.Error("scale names wrong")
	}
}

func TestGetCachesAndGroundTruths(t *testing.T) {
	p1, err := Get(Test)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Get(Test)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("Get did not cache")
	}
	// Every catalog keyword must have a nonempty cascade and a sane
	// ground truth on the test platform.
	for _, k := range Keywords() {
		count, err := p1.GroundTruth(query.CountQuery(k.Name))
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if count < 20 {
			t.Errorf("keyword %q has only %v adopters on the test platform", k.Name, count)
		}
	}
}

func TestFrequencyArchetypes(t *testing.T) {
	p, err := Get(Test)
	if err != nil {
		t.Fatal(err)
	}
	ny, _ := p.GroundTruth(query.CountQuery("new york"))
	sim, _ := p.GroundTruth(query.CountQuery("simvastatin"))
	if ny <= 2*sim {
		t.Errorf("new york (%v) should dwarf simvastatin (%v)", ny, sim)
	}
	// Boston's Apr 15 spike: mentions during [104,111) ≫ mentions the
	// two weeks before.
	days, err := p.MentionsPerDay("boston")
	if err != nil {
		t.Fatal(err)
	}
	var before, during float64
	for d := 90; d < 104; d++ {
		before += float64(days[d])
	}
	before /= 14
	for d := 104; d < 111; d++ {
		during += float64(days[d])
	}
	during /= 7
	if during < 2*before {
		t.Errorf("boston spike not prominent: before=%.1f during=%.1f", before, during)
	}
}
