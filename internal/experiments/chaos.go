package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/stats"
	"mba/internal/workload"
)

// chaosScenario is one fault configuration of the sweep. The scenarios
// walk the fault model end to end: independent 5xx transients at two
// rates, 429 rate-limit rejections, correlated outage bursts (with the
// circuit breaker armed), and a "storm" that layers every fault class
// at once — the DESIGN.md §6 requirement ("estimators must degrade
// gracefully, never panic, and report cost truthfully") turned into a
// measured experiment.
type chaosScenario struct {
	name   string
	faults api.Faults
	policy api.RetryPolicy
}

// chaosScenarios builds the sweep grid. Fault draws derive from seed
// so the whole sweep replays deterministically.
func chaosScenarios(seed int64) []chaosScenario {
	base := api.DefaultRetryPolicy()
	breaker := base
	breaker.BreakerThreshold = 5
	breaker.BreakerCooldown = time.Minute
	return []chaosScenario{
		{name: "baseline", faults: api.Faults{Seed: seed}, policy: base},
		{name: "transient-5%", faults: api.Faults{TransientProb: 0.05, Seed: seed}, policy: base},
		{name: "transient-20%", faults: api.Faults{TransientProb: 0.20, Seed: seed}, policy: base},
		{name: "ratelimit-10%", faults: api.Faults{RateLimitProb: 0.10, Seed: seed}, policy: base},
		{name: "outage", faults: api.Faults{OutageMeanGap: 4000, OutageLength: 25, Seed: seed}, policy: breaker},
		{name: "storm", faults: api.Faults{
			TransientProb:   0.08,
			RateLimitProb:   0.04,
			OutageMeanGap:   5000,
			OutageLength:    20,
			SlowCallProb:    0.05,
			SlowCallLatency: 2 * time.Second,
			TruncateProb:    0.02,
			PrivateProb:     0.05,
			Seed:            seed,
		}, policy: breaker},
	}
}

// chaosMaxResumes bounds the degrade→checkpoint→resume loop per run; a
// run that degrades more often than this reports its last partial
// state. Under heavy fault rates a segment buys a few hundred calls
// before degrading, so the bound must be generous for the sweep to
// spend its full budget.
const chaosMaxResumes = 200

// resumeLoop drives the fault-tolerance loop shared by the chaos and
// churn sweeps: whenever the run degrades (an unrecoverable fault or
// heal-limit breach mid-walk) and budget remains, it is resumed from
// its checkpoint on a fresh client — replaying the cached responses at
// zero cost, never repaying spent calls — until the run completes, the
// budget is gone, or resuming stops making progress. It returns the
// final (cumulative) result, the number of resumes taken, and the last
// session (whose client holds the full response cache, for auditing).
func resumeLoop(newSession func(b int) (*core.Session, error),
	runOnce func(s *core.Session, ck *core.Checkpoint) (core.Result, error),
	budget int) (core.Result, int, *core.Session, error) {

	s, err := newSession(budget)
	if err != nil {
		return core.Result{}, 0, nil, err
	}
	res, err := runOnce(s, nil)
	if err != nil {
		return res, 0, s, err
	}
	resumes := 0
	for res.Degraded && res.Cost < budget && resumes < chaosMaxResumes {
		s2, err := newSession(budget - res.Cost)
		if err != nil {
			break
		}
		prev := res
		res, err = runOnce(s2, prev.Checkpoint)
		if err != nil {
			return res, resumes, s2, err
		}
		s = s2
		resumes++
		if res.Cost <= prev.Cost && res.Samples <= prev.Samples {
			break // no progress; stop burning resumes
		}
	}
	return res, resumes, s, nil
}

// chaosRun executes one estimator under fault injection through
// resumeLoop.
func chaosRun(p *platform.Platform, algo Algo, q query.Query, sc chaosScenario,
	budget int, interval model.Tick, seed int64) (core.Result, int, *core.Session, error) {

	srv := api.NewServer(p, api.Twitter(), sc.faults)
	newSession := func(b int) (*core.Session, error) {
		client := api.NewClient(srv, b)
		client.Policy = sc.policy
		return core.NewSession(client, q, interval)
	}
	runOnce := func(s *core.Session, ck *core.Checkpoint) (core.Result, error) {
		switch algo {
		case MATARW:
			opts := core.TARWOptions{Seed: seed, SelectInterval: true, Resume: ck}
			if q.Agg != query.Avg {
				opts.AllowCrossLevel = true
				opts.WeightClip = 100
				opts.PEstimates = 5
			}
			return core.RunTARW(s, opts)
		case MR:
			return core.RunMR(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck})
		default:
			return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck})
		}
	}
	return resumeLoop(newSession, runOnce, budget)
}

// Chaos is the chaos-sweep harness: it sweeps the fault scenarios
// across MA-SRW, MA-TARW (both on AVG(followers) of privacy users) and
// the M&R baseline (on COUNT, the only aggregate it targets), running
// each to completion through the degrade/checkpoint/resume loop, and
// reports per run the relative error, the query cost to reach 10%
// error, the total charged cost, and the full resilience accounting —
// retries, rate-limit waits, breaker trips, virtual wait, resumes, and
// whether the final state was still degraded. The headline findings:
// the estimators stay near truth under every fault class (resilience
// costs calls, not bias), and no fault configuration panics or aborts.
func Chaos(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}

	avgQ := query.AvgQuery("privacy", query.Followers)
	cntQ := query.CountQuery("privacy")
	truthAvg, err := p.GroundTruth(avgQ)
	if err != nil {
		return Table{}, err
	}
	truthCnt, err := p.GroundTruth(cntQ)
	if err != nil {
		return Table{}, err
	}

	type cell struct {
		algo  Algo
		q     query.Query
		truth float64
	}
	cells := []cell{
		{MASRW, avgQ, truthAvg},
		{MATARW, avgQ, truthAvg},
		{MR, cntQ, truthCnt},
	}

	t := Table{
		ID:    "chaos",
		Title: "Chaos sweep: estimator robustness and the cost of resilience under injected API faults",
		Columns: []string{
			"Scenario", "Algo", "RelErr", "Cost@10%", "Cost",
			"Retries", "RateLimited", "Trips", "Wait", "Resumes", "Degraded", "Audit",
		},
	}

	aud := audit.Auditor{Budget: opts.Budget}
	var violations []string
	for _, sc := range chaosScenarios(opts.Seed) {
		for _, c := range cells {
			opts.logf("chaos: %s %s", sc.name, c.algo)
			var (
				relErrs  []float64
				costAt   []int
				cost     int
				st       api.Stats
				resumes  int
				degraded int
				checks   int
			)
			for trial := 0; trial < opts.Trials; trial++ {
				trialSc := sc
				trialSc.faults.Seed = sc.faults.Seed + int64(trial)*104729
				res, r, sess, err := chaosRun(p, c.algo, c.q, trialSc,
					opts.Budget, opts.Interval, opts.Seed+int64(trial)*7919)
				if err != nil {
					return Table{}, fmt.Errorf("chaos %s %s trial %d: %w", sc.name, c.algo, trial, err)
				}
				rep := aud.CheckRun(sess, res)
				checks += rep.Checks
				for _, v := range rep.Violations {
					violations = append(violations,
						fmt.Sprintf("%s/%s trial %d: %s", sc.name, c.algo, trial, v))
				}
				if !math.IsNaN(res.Estimate) {
					relErrs = append(relErrs, stats.RelativeError(res.Estimate, c.truth))
				}
				costAt = append(costAt, CostAtError(res.Trajectory, c.truth, 0.10))
				cost += res.Cost
				st = st.Add(res.Stats)
				resumes += r
				if res.Degraded {
					degraded++
				}
			}
			t.Rows = append(t.Rows, []string{
				sc.name,
				string(c.algo),
				fmtMedian(relErrs),
				fmtCost(medianCost(costAt)),
				fmt.Sprintf("%d", cost/opts.Trials),
				fmt.Sprintf("%d", st.Retries),
				fmt.Sprintf("%d", st.RateLimitHits),
				fmt.Sprintf("%d", st.CircuitTrips),
				fmt.Sprintf("%v", st.Wait.Round(time.Second)),
				fmt.Sprintf("%d", resumes),
				fmt.Sprintf("%d/%d", degraded, opts.Trials),
				fmt.Sprintf("ok(%d)", checks),
			})
		}
	}
	if len(violations) > 0 {
		return t, fmt.Errorf("chaos: auditor found %d invariant violations; first: %s",
			len(violations), violations[0])
	}
	return t, nil
}

// fmtMedian renders the median of a float sample ("n/a" when empty).
func fmtMedian(xs []float64) string {
	if len(xs) == 0 {
		return "n/a"
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return fmt.Sprintf("%.3f", s[len(s)/2])
}
