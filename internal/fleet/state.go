package fleet

import (
	"errors"
	"math"

	"mba/internal/api"
	"mba/internal/core"
)

// UnitState is the serializable form of a UnitResult, consumed by the
// durable store. Estimates travel as raw IEEE-754 bits: a unit that
// never produced an estimate carries NaN, which encoding/json refuses
// to marshal, and bits round-trip exactly by construction.
type UnitState struct {
	Unit          int                   `json:"unit"`
	Seed          int64                 `json:"seed"`
	Quota         int                   `json:"quota"`
	EstimateBits  uint64                `json:"estimate_bits"`
	Cost          int                   `json:"cost"`
	Samples       int                   `json:"samples"`
	Stats         api.Stats             `json:"stats"`
	Heal          core.HealStats        `json:"heal"`
	Resumes       int                   `json:"resumes,omitempty"`
	Parks         int                   `json:"parks,omitempty"`
	Drained       int                   `json:"drained,omitempty"`
	WatchdogTrips int                   `json:"watchdog_trips,omitempty"`
	Degraded      bool                  `json:"degraded,omitempty"`
	DegradedCode  string                `json:"degraded_code,omitempty"`
	DegradedMsg   string                `json:"degraded_msg,omitempty"`
	Panicked      bool                  `json:"panicked,omitempty"`
	Trace         []Segment             `json:"trace,omitempty"`
	Checkpoint    *core.CheckpointState `json:"checkpoint,omitempty"`
}

// CheckpointState is the serializable form of a fleet Checkpoint.
type CheckpointState struct {
	Units []UnitState `json:"units"`
}

// State converts the unit result into its serializable form.
func (u UnitResult) State() UnitState {
	st := UnitState{
		Unit:          u.Unit,
		Seed:          u.Seed,
		Quota:         u.Quota,
		EstimateBits:  math.Float64bits(u.Estimate),
		Cost:          u.Cost,
		Samples:       u.Samples,
		Stats:         u.Stats,
		Heal:          u.Heal,
		Resumes:       u.Resumes,
		Parks:         u.Parks,
		Drained:       u.Drained,
		WatchdogTrips: u.WatchdogTrips,
		Degraded:      u.Degraded,
		Panicked:      u.Panicked,
		Trace:         u.Trace,
	}
	st.DegradedCode, st.DegradedMsg = encodeCause(u.DegradedBy)
	if u.Checkpoint != nil {
		cs := u.Checkpoint.State()
		st.Checkpoint = &cs
	}
	return st
}

// UnitFromState rebuilds a unit result from its serialized form.
func UnitFromState(st UnitState) (UnitResult, error) {
	u := UnitResult{
		Unit:          st.Unit,
		Seed:          st.Seed,
		Quota:         st.Quota,
		Estimate:      math.Float64frombits(st.EstimateBits),
		Cost:          st.Cost,
		Samples:       st.Samples,
		Stats:         st.Stats,
		Heal:          st.Heal,
		Resumes:       st.Resumes,
		Parks:         st.Parks,
		Drained:       st.Drained,
		WatchdogTrips: st.WatchdogTrips,
		Degraded:      st.Degraded,
		DegradedBy:    decodeCause(st.DegradedCode, st.DegradedMsg),
		Panicked:      st.Panicked,
		Trace:         st.Trace,
	}
	if st.Checkpoint != nil {
		ck, err := core.CheckpointFromState(*st.Checkpoint)
		if err != nil {
			return UnitResult{}, err
		}
		u.Checkpoint = ck
	}
	return u, nil
}

// State converts the fleet checkpoint into its serializable form.
func (c *Checkpoint) State() CheckpointState {
	var st CheckpointState
	if c == nil {
		return st
	}
	for _, u := range c.units {
		st.Units = append(st.Units, u.State())
	}
	return st
}

// CheckpointFromState rebuilds a fleet checkpoint. Resuming from the
// rebuilt checkpoint is indistinguishable from resuming the original:
// degrade causes decode to errors that still satisfy errors.Is against
// the sentinel they encoded from, so the keep/resume/terminal logic in
// Run sees exactly what it would have seen in-process.
func CheckpointFromState(st CheckpointState) (*Checkpoint, error) {
	ck := &Checkpoint{}
	for _, us := range st.Units {
		u, err := UnitFromState(us)
		if err != nil {
			return nil, err
		}
		ck.units = append(ck.units, u)
	}
	return ck, nil
}

// sentinelCodes maps durable degrade-cause codes to the sentinel
// errors the rest of the system branches on with errors.Is. Ordered
// most-specific first: wrapping sentinels (ErrBudgetMidHeal wraps
// ErrBudgetExhausted, ErrTruncated wraps ErrTransient) must claim
// their code before the sentinel they wrap.
var sentinelCodes = []struct {
	code string
	err  error
}{
	{"autosave", core.ErrAutosave},
	{"budget_mid_heal", core.ErrBudgetMidHeal},
	{"budget_exhausted", api.ErrBudgetExhausted},
	{"node_vanished", core.ErrNodeVanished},
	{"churn_overwhelmed", core.ErrChurnOverwhelmed},
	{"throttled", api.ErrThrottled},
	{"stalled", api.ErrStalled},
	{"canceled", api.ErrCanceled},
	{"deadline_exceeded", api.ErrDeadlineExceeded},
	{"circuit_open", api.ErrCircuitOpen},
	{"truncated", api.ErrTruncated},
	{"transient", api.ErrTransient},
	{"private", api.ErrPrivate},
	{"unknown_user", api.ErrUnknownUser},
	{"walker_panic", ErrWalkerPanic},
}

// encodeCause flattens a degrade cause into a stable code plus the
// human-readable message. Causes outside the sentinel registry keep
// their message under the catch-all code.
func encodeCause(err error) (code, msg string) {
	if err == nil {
		return "", ""
	}
	for _, sc := range sentinelCodes {
		if errors.Is(err, sc.err) {
			return sc.code, err.Error()
		}
	}
	return "other", err.Error()
}

// decodeCause rebuilds a degrade cause: the decoded error keeps the
// original message and unwraps to the coded sentinel, so errors.Is
// survives the disk round-trip.
func decodeCause(code, msg string) error {
	if code == "" {
		return nil
	}
	for _, sc := range sentinelCodes {
		if sc.code == code {
			return &codedError{msg: msg, sentinel: sc.err}
		}
	}
	return errors.New(msg)
}

// codedError is a deserialized degrade cause: original message,
// sentinel identity.
type codedError struct {
	msg      string
	sentinel error
}

func (e *codedError) Error() string { return e.msg }
func (e *codedError) Unwrap() error { return e.sentinel }
