// Package unlockpath exercises the path-sensitive lock analysis: every
// Lock/RLock must reach a matching Unlock/RUnlock on all CFG paths.
package unlockpath

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

func (c *counter) earlyReturnLeak(stop bool) int {
	c.mu.Lock() // want `unlockpath\.counter\.mu locked here can reach a return without Unlock on some path`
	if stop {
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *counter) deferred() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) bothBranches(stop bool) int {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *counter) readLeak(stop bool) int {
	c.rw.RLock() // want `unlockpath\.counter\.rw locked here can reach a return without RUnlock on some path`
	if stop {
		return 0
	}
	n := c.n
	c.rw.RUnlock()
	return n
}

func (c *counter) loopBreakLeak(xs []int) int {
	total := 0
	for _, x := range xs {
		c.mu.Lock() // want `unlockpath\.counter\.mu locked here can reach a return without Unlock on some path`
		if x < 0 {
			break
		}
		total += x
		c.mu.Unlock()
	}
	return total
}

// release owns the unlock for callers that hand it the held counter;
// its summary says it may release counter.mu, so callers stay clean.
func (c *counter) release() { c.mu.Unlock() }

func (c *counter) helperReleases(stop bool) int {
	c.mu.Lock()
	if stop {
		c.release()
		return 0
	}
	n := c.n
	c.mu.Unlock()
	return n
}
