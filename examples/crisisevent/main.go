// Crisis event: measure the size and shape of a sudden spike — the
// Boston-Marathon-style scenario of the paper's Figure 7. The keyword
// "boston" carries medium baseline chatter with one singular spike at
// simulation day 104 (Apr 15, 2013). By the time an analyst asks, the
// search API's one-week window has long since scrolled past the event;
// timeline sampling is the only way back.
//
//	go run ./examples/crisisevent
package main

import (
	"fmt"
	"log"
	"strings"

	"mba"
)

func main() {
	cfg := mba.DefaultPlatformConfig()
	cfg.Seed = 99
	cfg.NumUsers = 30000
	fmt.Println("generating platform...")
	p, err := mba.NewPlatform(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Ground-truth weekly mention curve (what the streaming API would
	// have shown, had we subscribed in advance).
	days, err := p.Sim().MentionsPerDay("boston")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nWeekly 'boston' mention volume (ground truth):")
	maxWeek := 0
	var weeks []int
	for d := 0; d+7 <= len(days); d += 7 {
		sum := 0
		for j := d; j < d+7; j++ {
			sum += days[j]
		}
		weeks = append(weeks, sum)
		if sum > maxWeek {
			maxWeek = sum
		}
	}
	for i, w := range weeks {
		bar := 0
		if maxWeek > 0 {
			bar = w * 50 / maxWeek
		}
		marker := ""
		if i == 104/7 {
			marker = "  <- Apr 15"
		}
		fmt.Printf("  w%02d %6d %s%s\n", i, w, strings.Repeat("#", bar), marker)
	}

	// Estimate, via timeline sampling, how many users engaged during
	// the crisis week versus a quiet week in March.
	crisis := mba.TimeWindow(mba.Count("boston"), 104, 111)
	quiet := mba.TimeWindow(mba.Count("boston"), 70, 77)
	for _, c := range []struct {
		label string
		q     mba.Query
	}{
		{"crisis week (Apr 15-21)", crisis},
		{"quiet week  (Mar 12-18)", quiet},
	} {
		truth, err := p.GroundTruth(c.q)
		if err != nil {
			log.Fatal(err)
		}
		est, err := p.Estimate(c.q, mba.Options{Algorithm: mba.MASRW, Budget: 25000, Seed: 4})
		if err != nil {
			log.Fatalf("%s: %v", c.label, err)
		}
		fmt.Printf("\n%s: ≈ %.0f users mentioned boston (truth %.0f, %d calls)",
			c.label, est.Value, truth, est.Cost)
	}
	fmt.Println()
}
