package core

import (
	"sort"
	"testing"

	"mba/internal/api"
	"mba/internal/levelgraph"
	"mba/internal/model"
	"mba/internal/query"
)

// TestDebugTARWSupport quantifies, with full knowledge of the platform,
// how much of the term subgraph the bottom-top and top-bottom phases of
// MA-TARW can reach (p̄ > 0 / p̃ > 0), and what the exact
// Hansen–Hurwitz mass is. It documents the support structure the
// estimator deviation notes in matarw.go rely on.
func TestDebugTARWSupport(t *testing.T) {
	for _, interval := range []model.Tick{model.Day, 2 * model.Day, model.Week, model.Month} {
		t.Run(levelgraph.IntervalName(interval), func(t *testing.T) {
			debugSupport(t, interval)
		})
	}
}

func debugSupport(t *testing.T, interval model.Tick) {
	p := testPlatform(t)
	c := p.Cascade("privacy")
	term, err := p.TermSubgraph("privacy")
	if err != nil {
		t.Fatal(err)
	}
	lvl := func(u int64) int { return levelgraph.LevelOf(c.First[u], interval) }

	// Seeds as the estimator would see them.
	srv := api.NewServer(p, api.Twitter(), api.Faults{})
	s, _ := NewSession(api.NewClient(srv, 0), query.CountQuery("privacy"), interval)
	seeds, err := s.Seeds()
	if err != nil {
		t.Fatal(err)
	}

	nodes := term.Nodes()
	// Order nodes by level descending (bottom first) for the up DP.
	byLevelDesc := append([]int64(nil), nodes...)
	sort.Slice(byLevelDesc, func(i, j int) bool { return lvl(byLevelDesc[i]) > lvl(byLevelDesc[j]) })

	up := func(u int64) (out []int64) {
		for _, v := range term.Neighbors(u) {
			if lvl(v) < lvl(u) {
				out = append(out, v)
			}
		}
		return
	}
	down := func(u int64) (out []int64) {
		for _, v := range term.Neighbors(u) {
			if lvl(v) > lvl(u) {
				out = append(out, v)
			}
		}
		return
	}

	sSize := float64(seeds.Size())
	pBar := make(map[int64]float64, len(nodes))
	for _, u := range byLevelDesc { // bottom-up order: down-neighbors first
		var acc float64
		if seeds.Contains(u) {
			acc = 1 / sSize
		}
		for _, v := range down(u) {
			acc += pBar[v] / float64(len(up(v)))
		}
		pBar[u] = acc
	}
	// Top-down order for p̃.
	byLevelAsc := append([]int64(nil), nodes...)
	sort.Slice(byLevelAsc, func(i, j int) bool { return lvl(byLevelAsc[i]) < lvl(byLevelAsc[j]) })
	pTil := make(map[int64]float64, len(nodes))
	for _, u := range byLevelAsc {
		ups := up(u)
		if len(ups) == 0 {
			pTil[u] = pBar[u]
			continue
		}
		var acc float64
		for _, v := range ups {
			acc += pTil[v] / float64(len(down(v)))
		}
		pTil[u] = acc
	}

	var upSupport, downSupport, both int
	var upMass, downMass float64
	for _, u := range nodes {
		if pBar[u] > 0 {
			upSupport++
			upMass++
		}
		if pTil[u] > 0 {
			downSupport++
			downMass++
		}
		if pBar[u] > 0 || pTil[u] > 0 {
			both++
		}
	}
	n := len(nodes)
	var deadEnds, deadSeeds, isolated int
	var downDegSum, levelDegSum float64
	for _, u := range nodes {
		d := len(down(u))
		downDegSum += float64(d)
		levelDegSum += float64(d + len(up(u)))
		if d == 0 {
			deadEnds++
			if seeds.Contains(u) {
				deadSeeds++
			}
		}
		if d+len(up(u)) == 0 {
			isolated++
		}
	}
	t.Logf("term nodes=%d edges=%d seeds=%d", n, term.NumEdges(), seeds.Size())
	t.Logf("level-degree avg=%.2f down-degree avg=%.2f deadEnds=%d (seeds %d) isolated=%d",
		levelDegSum/float64(n), downDegSum/float64(n), deadEnds, deadSeeds, isolated)
	t.Logf("p̄>0: %d (%.1f%%), p̃>0: %d (%.1f%%), union: %d (%.1f%%)",
		upSupport, 100*float64(upSupport)/float64(n),
		downSupport, 100*float64(downSupport)/float64(n),
		both, 100*float64(both)/float64(n))
	// Exact expected per-walk phase sums: E[Σ_{u∈Ū} 1/p̄(u)] = |support(p̄)|.
	// So the diagnostics above directly bound what COUNT each phase can see.
}
