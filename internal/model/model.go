// Package model defines the plain data types shared by the simulated
// microblog platform (internal/platform), the rate-limited access API
// (internal/api), and the aggregate-query layer (internal/query):
// simulation time, user profiles, and posts.
//
// Simulation time is a Tick — whole hours since the start of the
// simulated observation window (the paper's window is Jan 1 – Oct 31,
// 2013, i.e. 304 days). Using hours keeps every time-interval setting
// from §4.2.3 of the paper (1 hour … 1 month) exactly representable.
package model

import "fmt"

// Tick is a simulation timestamp in whole hours since the start of the
// observation window.
type Tick int64

// HoursPerDay etc. convert between the paper's interval units and Ticks.
const (
	Hour  Tick = 1
	Day   Tick = 24
	Week  Tick = 7 * Day
	Month Tick = 30 * Day
)

// FormatTick renders a tick as "d<day>h<hour>" for logs and tables.
func FormatTick(t Tick) string {
	return fmt.Sprintf("d%dh%d", int64(t/Day), int64(t%Day))
}

// ParseTick parses the FormatTick form "d<day>h<hour>" back into a
// Tick, inverting FormatTick for every tick value (including the
// negative ticks Go's truncating division produces component-wise).
func ParseTick(s string) (Tick, error) {
	var d, h int64
	n, err := fmt.Sscanf(s, "d%dh%d", &d, &h)
	if err != nil || n != 2 {
		return 0, fmt.Errorf("model: malformed tick %q (want d<day>h<hour>)", s)
	}
	return Tick(d)*Day + Tick(h), nil
}

// Window is a half-open time interval [From, To). The zero Window is
// interpreted as unbounded (matches every tick).
type Window struct {
	From, To Tick
}

// IsZero reports whether w is the unbounded zero window.
func (w Window) IsZero() bool { return w.From == 0 && w.To == 0 }

// Contains reports whether t falls inside the window.
func (w Window) Contains(t Tick) bool {
	if w.IsZero() {
		return true
	}
	return t >= w.From && t < w.To
}

// Gender is a user profile attribute. The paper's Figure 13 aggregates
// over "male users who posted privacy" on Google+.
type Gender uint8

// Gender values. Unknown models platforms (like Twitter) where gender
// is generally missing from profiles.
const (
	GenderUnknown Gender = iota
	GenderMale
	GenderFemale
)

func (g Gender) String() string {
	switch g {
	case GenderMale:
		return "male"
	case GenderFemale:
		return "female"
	default:
		return "unknown"
	}
}

// Profile is the user-profile information a USER TIMELINE query returns
// alongside the posts (§2 of the paper folds profile access into the
// timeline query).
type Profile struct {
	ID          int64
	DisplayName string
	Gender      Gender
	Age         int
	Followers   int // follower count as displayed on the profile
	Likes       int // total likes received (Tumblr-style blogs)
	PostCount   int // total posts ever published (drives timeline paging)
}

// DisplayNameLength returns the rune length of the display name — the
// low-variance measure of the paper's Figures 11–12.
func (p Profile) DisplayNameLength() int { return len([]rune(p.DisplayName)) }

// Post is a single keyword-bearing micropost. Background posts that do
// not mention any tracked keyword are accounted for only via
// Profile.PostCount (they affect timeline paging cost and the
// 3200-post visibility cap, not aggregate answers).
type Post struct {
	Author  int64
	Time    Tick
	Keyword string
	Likes   int // likes/favourites this post received
	Length  int // body length in characters
}

// Timeline is the result of a USER TIMELINE query: profile plus every
// retrievable keyword post, oldest first.
type Timeline struct {
	Profile Profile
	Posts   []Post
	// Truncated reports that the platform's timeline cap (3200 on
	// Twitter) hid part of the user's history, so Posts may be missing
	// old entries.
	Truncated bool
}

// FirstMention returns the time of the oldest visible post mentioning
// keyword, and whether one exists.
func (t Timeline) FirstMention(keyword string) (Tick, bool) {
	for _, p := range t.Posts {
		if p.Keyword == keyword {
			return p.Time, true
		}
	}
	return 0, false
}

// MentionTimes returns the times of all visible posts mentioning
// keyword, oldest first.
func (t Timeline) MentionTimes(keyword string) []Tick {
	var out []Tick
	for _, p := range t.Posts {
		if p.Keyword == keyword {
			out = append(out, p.Time)
		}
	}
	return out
}

// KeywordPosts returns the visible posts mentioning keyword, optionally
// restricted to a window.
func (t Timeline) KeywordPosts(keyword string, w Window) []Post {
	var out []Post
	for _, p := range t.Posts {
		if p.Keyword == keyword && w.Contains(p.Time) {
			out = append(out, p)
		}
	}
	return out
}
