// Package lintdirective holds the malformed directives the
// lintdirective analyzer must reject: a directive without a reason and
// a directive attached to no statement. The valid forms (statement and
// declaration anchors) must pass silently.
package lintdirective

import "errors"

//lint:ignore errsentinel declarations are valid anchors; this directive is well-formed
var ErrY = errors.New("y")

func reasonless(err error) bool {
	//lint:ignore errsentinel
	return err == ErrY
}

func dangling(err error) bool {
	return err == nil
	// The directive below precedes only the closing brace.
	//lint:ignore errsentinel trailing nothing
}
