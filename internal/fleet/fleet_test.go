package fleet_test

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"mba/internal/api"
	"mba/internal/audit"
	"mba/internal/core"
	"mba/internal/fleet"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
)

func testPlatform(t *testing.T) *platform.Platform {
	t.Helper()
	p, err := platform.New(platform.Config{
		Seed:                  7,
		NumUsers:              2000,
		NumCommunities:        15,
		IntraEdgesPerUser:     4,
		InterEdgesPerUser:     1,
		HorizonDays:           90,
		TimelineCap:           3200,
		BackgroundPostsPerDay: 1,
		Keywords: []platform.KeywordConfig{
			{Name: "privacy", SeedsPerDay: 1.0},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func srwWalk(ctx context.Context, s *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
	return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx})
}

func baseConfig(p *platform.Platform, budget int) fleet.Config {
	return fleet.Config{
		Platform: p,
		Query:    query.AvgQuery("privacy", query.Followers),
		Interval: model.Day,
		Walk:     srwWalk,
		Budget:   budget,
		Seed:     1,
	}
}

// fingerprint reduces a fleet result to a parallelism-independent
// byte string: every statistically meaningful field, per unit, in unit
// order, with estimates rendered as exact bit patterns.
func fingerprint(res fleet.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "est=%#x cost=%d samples=%d shed=%d trips=%d degraded=%v virtual=%v\n",
		math.Float64bits(res.Estimate), res.Cost, res.Samples, res.Shed,
		res.WatchdogTrips, res.Degraded, res.VirtualDuration)
	for _, u := range res.Units {
		fmt.Fprintf(&b, "unit=%d seed=%d quota=%d est=%#x cost=%d samples=%d heal=%+v degraded=%v\n",
			u.Unit, u.Seed, u.Quota, math.Float64bits(u.Estimate), u.Cost, u.Samples, u.Heal, u.Degraded)
	}
	return b.String()
}

// TestFleetDeterministicAcrossParallelism is the tentpole regression:
// the same logical plan at 1, 2, and 8 goroutines must produce
// byte-identical results, and the auditor must find the ledger
// balanced after each run.
func TestFleetDeterministicAcrossParallelism(t *testing.T) {
	p := testPlatform(t)
	aud := audit.Auditor{Budget: 8000}
	var prints []string
	var estimates []float64
	for _, par := range []int{1, 2, 8} {
		cfg := baseConfig(p, 8000)
		cfg.Parallelism = par
		res, err := fleet.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if res.Degraded {
			t.Fatalf("parallelism %d degraded on a healthy platform: %v", par, res.DegradedBy)
		}
		if math.IsNaN(res.Estimate) {
			t.Fatalf("parallelism %d produced no estimate", par)
		}
		if rep := aud.CheckFleet(res); !rep.OK() {
			t.Fatalf("parallelism %d: %v", par, rep.Err())
		}
		if res.Ledger.Committed != res.Cost {
			t.Fatalf("parallelism %d: ledger committed %d, walkers charged %d", par, res.Ledger.Committed, res.Cost)
		}
		prints = append(prints, fingerprint(res))
		estimates = append(estimates, res.Estimate)
	}
	for i, fp := range prints[1:] {
		if fp != prints[0] {
			t.Errorf("fingerprint of run %d differs from run 0:\n--- run 0\n%s--- run %d\n%s", i+1, prints[0], i+1, fp)
		}
	}
	if rep := (audit.Auditor{}).CheckParallelDeterminism(estimates); !rep.OK() {
		t.Error(rep.Err())
	}
}

// TestFleetStressUnderChurnAndChaos is the -race stress fixture: eight
// walkers at full parallelism over a churning, fault-injecting
// platform must stay deterministic across parallelism levels and keep
// the ledger balanced. CI runs this (and the whole fleet suite) with
// -race.
func TestFleetStressUnderChurnAndChaos(t *testing.T) {
	p := testPlatform(t)
	aud := audit.Auditor{Budget: 8000}
	mk := func(par int) fleet.Config {
		cfg := baseConfig(p, 8000)
		cfg.Parallelism = par
		cfg.Faults = api.Faults{TransientProb: 0.05, RateLimitProb: 0.02, Seed: 5}
		cfg.Churn = platform.ChurnConfig{Rate: 1.5, VanishWeight: 1}
		cfg.StallWait = 8 * time.Hour
		return cfg
	}
	var prints []string
	var last fleet.Result
	for _, par := range []int{1, 8} {
		res, err := fleet.Run(context.Background(), mk(par))
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if rep := aud.CheckFleet(res); !rep.OK() {
			t.Fatalf("parallelism %d: %v", par, rep.Err())
		}
		prints = append(prints, fingerprint(res))
		last = res
	}
	if prints[0] != prints[1] {
		t.Errorf("chaos fleet not parallelism-invariant:\n--- par 1\n%s--- par 8\n%s", prints[0], prints[1])
	}
	if last.Heal.VanishedUsers == 0 && last.Stats.Retries == 0 {
		t.Error("chaos fixture too quiet: no churn observed and no retries paid")
	}
}

// TestFleetDeadlineDegradesWithoutHanging: a virtual deadline shorter
// than the run cancels every walker at its next call and yields a
// Degraded partial result — never a hang, and with the books balanced.
func TestFleetDeadlineDegradesWithoutHanging(t *testing.T) {
	p := testPlatform(t)
	cfg := baseConfig(p, 8000)
	cfg.Parallelism = 8
	cfg.Deadline = time.Minute // one rate-limit window (15m) already exceeds it
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("run past its deadline not Degraded")
	}
	if !errors.Is(res.DegradedBy, api.ErrDeadlineExceeded) {
		t.Fatalf("DegradedBy = %v, want ErrDeadlineExceeded", res.DegradedBy)
	}
	if res.Cost >= cfg.Budget {
		t.Fatalf("deadline-cut run still spent the whole budget (%d)", res.Cost)
	}
	if rep := (audit.Auditor{Budget: cfg.Budget}).CheckFleet(res); !rep.OK() {
		t.Fatal(rep.Err())
	}
}

// TestFleetCancellationDegrades: caller cancellation propagates into
// every pending call and surfaces as a Degraded partial result.
func TestFleetCancellationDegrades(t *testing.T) {
	p := testPlatform(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig(p, 8000)
	cfg.Parallelism = 8
	res, err := fleet.Run(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("cancelled run not Degraded")
	}
	if !errors.Is(res.DegradedBy, api.ErrCanceled) {
		t.Fatalf("DegradedBy = %v, want ErrCanceled", res.DegradedBy)
	}
	if res.Cost != 0 {
		t.Fatalf("pre-cancelled run charged %d calls", res.Cost)
	}
}

// TestFleetPanicIsolation: a crashing walker is folded into a Degraded
// unit result; its siblings finish and still merge an estimate.
func TestFleetPanicIsolation(t *testing.T) {
	p := testPlatform(t)
	cfg := baseConfig(p, 8000)
	cfg.Parallelism = 1 // deterministic: unit 0 runs first and panics
	first := true
	cfg.Walk = func(ctx context.Context, s *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
		if first {
			first = false
			panic("walker crashed")
		}
		return srwWalk(ctx, s, seed, ck)
	}
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatalf("a walker panic must not crash the fleet: %v", err)
	}
	if !res.Degraded || !errors.Is(res.DegradedBy, fleet.ErrWalkerPanic) {
		t.Fatalf("degraded=%v by %v, want ErrWalkerPanic", res.Degraded, res.DegradedBy)
	}
	panicked := 0
	for _, u := range res.Units {
		if u.Panicked {
			panicked++
			if !u.Degraded {
				t.Error("panicked unit not Degraded")
			}
		}
	}
	if panicked != 1 {
		t.Fatalf("%d units panicked, want exactly 1", panicked)
	}
	if math.IsNaN(res.Estimate) {
		t.Error("surviving walkers produced no merged estimate")
	}
}

// TestFleetCheckpointResume: a deadline-interrupted fleet resumes from
// its checkpoint, finishes the plan, and keeps cumulative accounting
// truthful against a fresh ledger with the prior spend carried forward.
func TestFleetCheckpointResume(t *testing.T) {
	p := testPlatform(t)
	cfg := baseConfig(p, 8000)
	cfg.Parallelism = 8
	cfg.Deadline = 16 * time.Minute // one window of progress, then cut
	res1, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Degraded || res1.Checkpoint == nil {
		t.Fatalf("interrupted flight: degraded=%v checkpoint=%v", res1.Degraded, res1.Checkpoint)
	}
	if res1.Cost == 0 {
		t.Fatal("first flight made no progress before the deadline")
	}

	cfg2 := baseConfig(p, 8000)
	cfg2.Parallelism = 8
	cfg2.Resume = res1.Checkpoint
	res2, err := fleet.Run(context.Background(), cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded {
		t.Fatalf("resumed flight degraded: %v", res2.DegradedBy)
	}
	if res2.Cost <= res1.Cost {
		t.Fatalf("resume made no progress: cost %d -> %d", res1.Cost, res2.Cost)
	}
	if math.IsNaN(res2.Estimate) {
		t.Fatal("resumed fleet produced no estimate")
	}
	if rep := (audit.Auditor{Budget: cfg.Budget}).CheckFleet(res2); !rep.OK() {
		t.Fatal(rep.Err())
	}

	// Resume with a mismatched plan is a loud configuration error, not
	// silent corruption.
	bad := baseConfig(p, 500) // sheds to fewer units than the checkpoint holds
	bad.Resume = res1.Checkpoint
	if _, err := fleet.Run(context.Background(), bad); err == nil {
		t.Error("resume with a mismatched unit plan succeeded")
	}
}

// TestFleetLoadShedding: when the budget cannot give every planned
// walker MinUnitBudget calls, the fleet deterministically sheds units
// instead of starving all of them.
func TestFleetLoadShedding(t *testing.T) {
	p := testPlatform(t)
	cfg := baseConfig(p, 600)
	cfg.MinUnitBudget = 250
	res, err := fleet.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.UnitsRun != 2 || res.Shed != 6 {
		t.Fatalf("UnitsRun=%d Shed=%d, want 2 run / 6 shed at 600 budget with 250 floor", res.UnitsRun, res.Shed)
	}
	if rep := (audit.Auditor{Budget: cfg.Budget}).CheckFleet(res); !rep.OK() {
		t.Fatal(rep.Err())
	}

	// Config errors are errors, not degraded results.
	if _, err := fleet.Run(context.Background(), fleet.Config{Platform: p, Walk: srwWalk}); err == nil {
		t.Error("zero budget accepted")
	}
	noWalk := baseConfig(p, 1000)
	noWalk.Walk = nil
	if _, err := fleet.Run(context.Background(), noWalk); err == nil {
		t.Error("missing Walk accepted")
	}
}
