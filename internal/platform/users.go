package platform

import (
	"math"
	"math/rand"
	"strconv"

	"mba/internal/graph"
	"mba/internal/model"
)

// Display names are assembled from syllables so their length follows a
// realistic distribution (the paper's Figures 11–12 aggregate
// display-name length precisely because it is a low-variance measure).
var nameSyllables = []string{
	"al", "an", "ar", "bel", "ben", "cal", "car", "dan", "del", "el",
	"fen", "gar", "hal", "in", "jo", "ka", "lan", "lee", "ma", "mi",
	"na", "nor", "o", "pe", "qui", "ra", "ri", "sa", "so", "ta",
	"tor", "u", "vi", "wen", "xi", "ya", "zo",
}

func randomDisplayName(rng *rand.Rand) string {
	words := 1 + rng.Intn(2)
	name := ""
	for w := 0; w < words; w++ {
		if w > 0 {
			name += " "
		}
		syl := 2 + rng.Intn(3)
		for s := 0; s < syl; s++ {
			part := nameSyllables[rng.Intn(len(nameSyllables))]
			if s == 0 {
				part = string(part[0]-'a'+'A') + part[1:]
			}
			name += part
		}
	}
	if rng.Float64() < 0.25 {
		name += strconv.Itoa(rng.Intn(100))
	}
	return name
}

// generateUsers fills in per-user profiles. Follower counts are the
// user's undirected degree inflated by a lognormal factor, preserving
// the heavy tail (the paper's AVG(followers) experiments hinge on the
// high variance of this attribute). Background posting rates are
// lognormal around cfg.BackgroundPostsPerDay.
func generateUsers(rng *rand.Rand, communities []int, g *graph.Graph, cfg Config, horizon model.Tick) []User {
	users := make([]User, len(communities))
	for i := range users {
		id := int64(i)
		deg := g.Degree(id)
		followFactor := math.Exp(rng.NormFloat64() * 0.8) // lognormal, median 1
		followers := int(float64(deg)*(1+2*followFactor)) + rng.Intn(3)

		gender := model.GenderUnknown
		if rng.Float64() < cfg.GenderKnownProb {
			if rng.Float64() < 0.52 {
				gender = model.GenderMale
			} else {
				gender = model.GenderFemale
			}
		}

		rate := cfg.BackgroundPostsPerDay * math.Exp(rng.NormFloat64()*0.7) / 24 // posts per hour
		postCount := int(rate * float64(horizon))

		users[i] = User{
			Profile: model.Profile{
				ID:          id,
				DisplayName: randomDisplayName(rng),
				Gender:      gender,
				Age:         13 + int(rng.ExpFloat64()*12),
				Followers:   followers,
				Likes:       int(math.Exp(rng.NormFloat64()*1.5) * float64(deg+1)),
				PostCount:   postCount,
			},
			Community: communities[i],
			PostRate:  rate,
		}
	}
	return users
}
