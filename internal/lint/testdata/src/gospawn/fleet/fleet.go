// Fixture for the gospawn analyzer: the package basename is "fleet",
// so go statements are allowed — but only when the same function joins
// its spawns with sync.WaitGroup.Wait.
package fleet

import "sync"

func joinedFanOut(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func joinedViaHelperLiteral() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work(&wg)
	defer wg.Wait()
}

func unjoinedSpawn() {
	go work(nil) // want "unjoined goroutine"
}

func unjoinedDespiteWaitGroup() {
	var wg sync.WaitGroup
	wg.Add(1)
	go work(&wg) // want "unjoined goroutine"
	// wg.Wait() intentionally missing.
	_ = wg
}

func work(wg *sync.WaitGroup) {
	if wg != nil {
		wg.Done()
	}
}
