package lint

import (
	"go/ast"
)

// wallClockFuncs are the package-level time functions that read or
// block on the process clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"Tick": true, "After": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// NoWallClock forbids wall-clock reads and sleeps outside the api
// package. Estimators and experiments run in virtual time: waits are
// accounted in api.Stats.Wait and surfaced via Client.VirtualDuration,
// so a simulated week of rate-limit windows costs no real seconds and
// replays identically. A stray time.Now or time.Sleep reintroduces the
// host clock into results. The api package (latency plumbing) and
// package main (CLI progress output) are the allowlisted exceptions.
var NoWallClock = &Analyzer{
	Name: "nowallclock",
	Doc: "forbid time.Now/Since/Sleep and friends in estimator and experiment " +
		"packages; virtual time only",
	Run: runNoWallClock,
}

func runNoWallClock(pass *Pass) error {
	if pass.Pkg.Name() == "api" || pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			if pass.ImportedPkgPath(id) == "time" && wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(call.Pos(),
					"time.%s reads the wall clock; estimators run in virtual time (account waits in api.Stats.Wait / Client.VirtualDuration)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
