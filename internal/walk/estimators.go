package walk

// RatioEstimator computes AVG(f) from simple-random-walk samples by
// importance reweighting: under the SRW stationary distribution
// π(u) ∝ d(u), E[f/d]/E[1/d] equals the population mean of f, so
// sum(f_i/d_i)/sum(1/d_i) is a consistent estimator (the standard
// re-weighted estimator of [Gjoka et al. 2010], used by MA-SRW for AVG
// queries). The zero value is ready to use.
type RatioEstimator struct {
	sumFd   float64
	sumInvD float64
	n       int
}

// Add incorporates a sample with value f taken at a node of degree d.
// Samples with non-positive degree are ignored (they cannot occur
// under a well-formed walk).
func (r *RatioEstimator) Add(f float64, degree int) {
	if degree <= 0 {
		return
	}
	d := float64(degree)
	r.sumFd += f / d
	r.sumInvD += 1 / d
	r.n++
}

// N returns the number of samples incorporated.
func (r *RatioEstimator) N() int { return r.n }

// Estimate returns the AVG estimate. ok is false before any sample.
func (r *RatioEstimator) Estimate() (est float64, ok bool) {
	if r.n == 0 || r.sumInvD == 0 {
		return 0, false
	}
	return r.sumFd / r.sumInvD, true
}

// MeanEstimator computes AVG(f) from uniform samples (e.g., a
// Metropolis–Hastings walk after burn-in). The zero value is ready.
type MeanEstimator struct {
	sum float64
	n   int
}

// Add incorporates one sample value.
func (m *MeanEstimator) Add(f float64) {
	m.sum += f
	m.n++
}

// N returns the sample count.
func (m *MeanEstimator) N() int { return m.n }

// Estimate returns the sample mean; ok is false before any sample.
func (m *MeanEstimator) Estimate() (float64, bool) {
	if m.n == 0 {
		return 0, false
	}
	return m.sum / float64(m.n), true
}

// HansenHurwitz estimates a population total SUM(f) from samples drawn
// with known (or unbiasedly estimated) selection probabilities: each
// draw contributes f(u)/p(u), and the estimate is the mean of the
// contributions [Hansen & Hurwitz 1943]. This is the estimator
// MA-TARW's topology-aware walk enables for SUM and COUNT without
// mark-and-recapture (§5.1). The zero value is ready to use.
type HansenHurwitz struct {
	sum float64
	n   int
}

// Add incorporates a sample with value f drawn with probability p.
// Samples with non-positive p are skipped and counted separately; see
// Skipped.
func (h *HansenHurwitz) Add(f, p float64) {
	if p <= 0 {
		return
	}
	h.sum += f / p
	h.n++
}

// AddZero records that a draw had an unusable (zero) probability
// estimate without contributing mass. Kept for diagnostics.
func (h *HansenHurwitz) AddZero() {}

// N returns the number of contributing samples.
func (h *HansenHurwitz) N() int { return h.n }

// Estimate returns the SUM estimate; ok is false before any sample.
func (h *HansenHurwitz) Estimate() (float64, bool) {
	if h.n == 0 {
		return 0, false
	}
	return h.sum / float64(h.n), true
}

// SizeEstimator implements the Katzir–Liberty–Somekh mark-and-recapture
// population-size estimator from degree-biased samples (the paper's M&R
// baseline, [15]): with r samples of degrees d_i,
//
//	n̂ = (Σ d_i)(Σ 1/d_i) / (2·C) · (r−1)/r
//
// where C is the number of colliding sample pairs. The paper notes that
// Ω(√n) samples are needed before the first collision — the reason M&R
// COUNT estimation is so expensive (Figures 3, 10, 13).
//
// Samples fed to Add should be approximately independent draws from the
// walk's stationary distribution (thin the chain before feeding).
type SizeEstimator struct {
	sumD    float64
	sumInvD float64
	n       int
	counts  map[int64]int
	// Collisions is the number of sample pairs that hit the same node.
	collisions int
}

// NewSizeEstimator returns an empty estimator.
func NewSizeEstimator() *SizeEstimator {
	return &SizeEstimator{counts: make(map[int64]int)}
}

// Add incorporates a degree-biased sample of node id with degree d.
func (s *SizeEstimator) Add(id int64, degree int) {
	if degree <= 0 {
		return
	}
	d := float64(degree)
	s.sumD += d
	s.sumInvD += 1 / d
	s.collisions += s.counts[id]
	s.counts[id]++
	s.n++
}

// N returns the number of samples.
func (s *SizeEstimator) N() int { return s.n }

// Collisions returns the number of colliding pairs so far.
func (s *SizeEstimator) Collisions() int { return s.collisions }

// Estimate returns the size estimate; ok is false until at least one
// collision has occurred (before that the data carry no scale
// information, per the paper's discussion in §5.1).
func (s *SizeEstimator) Estimate() (float64, bool) {
	if s.collisions == 0 || s.n < 2 {
		return 0, false
	}
	r := float64(s.n)
	return s.sumD * s.sumInvD / (2 * float64(s.collisions)) * (r - 1) / r, true
}
