package mba

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

// TestEstimateJSONRoundTrip: an Estimate with NaN value and an Inf
// trajectory point — both illegal for stock encoding/json — survives a
// marshal/unmarshal cycle field-for-field.
func TestEstimateJSONRoundTrip(t *testing.T) {
	in := Estimate{
		Value:           math.NaN(),
		Cost:            123,
		Samples:         7,
		VirtualDuration: 90 * time.Second,
		Trajectory: []TrajectoryPoint{
			{Cost: 10, Estimate: math.Inf(1)},
			{Cost: 60, Estimate: 41.5},
			{Cost: 123, Estimate: math.NaN()},
		},
		Degraded:      true,
		Retries:       3,
		RateLimitHits: 2,
		ThrottleWait:  30 * time.Second,
		Makespan:      time.Minute,
		WalkersRun:    4,
		WalkersShed:   1,
		Restarts:      2,
		RecoveredCost: 55,
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out Estimate
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal(%s): %v", b, err)
	}
	if !math.IsNaN(out.Value) {
		t.Errorf("Value %v lost NaN", out.Value)
	}
	if out.Cost != in.Cost || out.Samples != in.Samples ||
		out.VirtualDuration != in.VirtualDuration ||
		out.Degraded != in.Degraded || out.Retries != in.Retries ||
		out.RateLimitHits != in.RateLimitHits ||
		out.ThrottleWait != in.ThrottleWait || out.Makespan != in.Makespan ||
		out.WalkersRun != in.WalkersRun || out.WalkersShed != in.WalkersShed ||
		out.Restarts != in.Restarts || out.RecoveredCost != in.RecoveredCost {
		t.Errorf("scalar fields lost: got %+v", out)
	}
	if len(out.Trajectory) != 3 {
		t.Fatalf("trajectory length %d", len(out.Trajectory))
	}
	if !math.IsInf(out.Trajectory[0].Estimate, 1) {
		t.Errorf("trajectory[0] %v lost +Inf", out.Trajectory[0].Estimate)
	}
	if out.Trajectory[1] != (TrajectoryPoint{Cost: 60, Estimate: 41.5}) {
		t.Errorf("trajectory[1] = %+v", out.Trajectory[1])
	}
	if !math.IsNaN(out.Trajectory[2].Estimate) {
		t.Errorf("trajectory[2] %v lost NaN", out.Trajectory[2].Estimate)
	}
}

// TestEstimateJSONFinite: ordinary finite estimates keep plain numeric
// encodings so existing consumers parse them with stock tooling.
func TestEstimateJSONFinite(t *testing.T) {
	in := Estimate{Value: 12.5, Cost: 9, Samples: 3,
		Trajectory: []TrajectoryPoint{{Cost: 9, Estimate: 12.5}}}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	// Decode through an anonymous struct with plain float64s: finite
	// values must not need the custom decoder.
	var plain struct {
		Value      float64
		Trajectory []struct {
			Cost     int
			Estimate float64
		}
	}
	if err := json.Unmarshal(b, &plain); err != nil {
		t.Fatalf("plain decode of %s: %v", b, err)
	}
	if plain.Value != 12.5 || len(plain.Trajectory) != 1 || plain.Trajectory[0].Estimate != 12.5 {
		t.Errorf("plain decode lost values: %+v from %s", plain, b)
	}
}
