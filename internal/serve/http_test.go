package serve

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"mba/internal/query"
)

// liveService spins up a service with a running pool and an HTTP test
// server, torn down with the test.
func liveService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Platform: testPlatform(t),
		Tenants:  twoTenants(8000),
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx)
	}()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		wg.Wait()
	})
	return s, ts
}

// TestHTTPQueryRoundTrip: a query POSTed over HTTP returns a JSON
// response that decodes back, including its NaN fields.
func TestHTTPQueryRoundTrip(t *testing.T) {
	_, ts := liveService(t)

	// A one-call budget cannot even finish the first API call — the
	// walk errors out and the response carries NaN fields, which must
	// still marshal and decode — the round-trip satellite.
	body := `{"tenant":"gold","query":"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"privacy\"","budget":1,"no_cache":true}`
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422", resp.StatusCode)
	}
	var r Response
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		t.Fatalf("response did not decode: %v", err)
	}
	if !math.IsNaN(float64(r.Estimate)) {
		t.Errorf("1-call budget formed estimate %v", r.Estimate)
	}
	if r.EstimateBits != math.Float64bits(math.NaN()) {
		t.Errorf("estimate bits %#x lost NaN", r.EstimateBits)
	}
	if want := query.AvgQuery("privacy", query.Followers).String(); r.Query != want {
		t.Errorf("query not normalized: %q != %q", r.Query, want)
	}

	// A real budget returns a finite estimate.
	body = `{"tenant":"bronze","query":"SELECT AVG(followers) FROM users WHERE timeline CONTAINS \"boston\"","budget":2000}`
	resp2, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var r2 Response
	if err := json.NewDecoder(resp2.Body).Decode(&r2); err != nil {
		t.Fatal(err)
	}
	if r2.Status != StatusOK || math.IsNaN(float64(r2.Estimate)) {
		t.Errorf("want finite ok estimate, got %+v", r2)
	}
	if r2.Charged == 0 {
		t.Errorf("fresh run charged nothing: %+v", r2)
	}
}

// TestHTTPRejectsMalformed: bad bodies are 4xx responses, never
// panics, and unknown tenants are well-formed errors.
func TestHTTPRejectsMalformed(t *testing.T) {
	_, ts := liveService(t)
	for _, body := range []string{
		``,
		`{`,
		`[]`,
		`{"tenant":"gold"}`,
		`{"tenant":"gold","query":"DROP TABLE users"}`,
		`{"tenant":"gold","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"privacy\"","budget":-5}`,
		`{"tenant":"gold","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"privacy\"","algo":"QUANTUM"}`,
	} {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	// Unknown tenant parses fine but resolves to an error response.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json",
		strings.NewReader(`{"tenant":"nobody","query":"SELECT COUNT(1) FROM users WHERE timeline CONTAINS \"privacy\""}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown tenant: status %d, want 422", resp.StatusCode)
	}
}

// TestHTTPStats: the stats endpoint serves metrics and ledger books.
func TestHTTPStats(t *testing.T) {
	_, ts := liveService(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Metrics Metrics `json:"metrics"`
		Ledger  struct {
			Total int `json:"Total"`
		} `json:"ledger"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Ledger.Total != 24000 {
		t.Errorf("ledger total %d, want 24000", out.Ledger.Total)
	}
}
