package lint

import (
	"sort"
	"strings"
)

// LockOrder proves a global mutex-acquisition order across the
// program's named locks (api.Client.mu, api.Ledger.mu, api.Server.mu,
// workload.cacheMu, fleet's per-run state, ...) or pinpoints the
// witnesses that break one. The whole-program pass records a lock
// edge "held L while acquiring M" for every direct Lock call under a
// held lock and for every call whose callee summary (transitively)
// acquires a lock. If the resulting directed graph is acyclic, every
// interleaving of the walker fleet is deadlock-free on these locks;
// a cycle is reported at each participating acquisition site.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "enforce one global mutex acquisition order; report lock-order " +
		"cycles (potential deadlocks) at their acquisition witnesses",
	Run: runLockOrder,
}

func runLockOrder(pass *Pass) error {
	prog := pass.Prog
	if prog == nil {
		return nil
	}
	cycles := lockCycles(prog.lockEdges)
	reported := map[string]bool{}
	for _, e := range prog.lockEdges {
		if e.PkgPath != pass.Pkg.Path() {
			continue
		}
		key := e.From + "\x00" + e.To
		if reported[key] {
			continue
		}
		if e.From == e.To {
			reported[key] = true
			via := ""
			if e.Via != "" {
				via = " (via " + e.Via + ")"
			}
			pass.Reportf(e.Pos, "acquires %s while already holding it%s; self-deadlock", e.To, via)
			continue
		}
		scc := cycles[e.From]
		if scc == "" || cycles[e.To] != scc {
			continue
		}
		reported[key] = true
		via := ""
		if e.Via != "" {
			via = " via " + e.Via
		}
		pass.Reportf(e.Pos,
			"acquires %s while holding %s%s, but another path acquires them in the opposite order (lock-order cycle through %s); establish one global acquisition order", e.To, e.From, via, scc)
	}
	return nil
}

// lockCycles condenses the lock-order graph and returns, for every
// lock on a cycle, a stable label naming its strongly connected
// component (the sorted member list). Locks not on any cycle are
// absent.
func lockCycles(edges []lockEdge) map[string]string {
	adj := map[string]map[string]bool{}
	nodes := map[string]bool{}
	for _, e := range edges {
		if e.From == e.To {
			continue // self-loops are reported directly
		}
		if adj[e.From] == nil {
			adj[e.From] = map[string]bool{}
		}
		adj[e.From][e.To] = true
		nodes[e.From], nodes[e.To] = true, true
	}
	names := make([]string, 0, len(nodes))
	for n := range nodes {
		names = append(names, n)
	}
	sort.Strings(names)
	succs := func(n string) []string {
		out := make([]string, 0, len(adj[n]))
		for m := range adj[n] {
			out = append(out, m)
		}
		sort.Strings(out)
		return out
	}

	// Iterative Tarjan over the (small) lock graph.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	out := map[string]string{}
	type frame struct {
		n  string
		ci int
	}
	for _, root := range names {
		if _, seen := index[root]; seen {
			continue
		}
		work := []frame{{n: root}}
		for len(work) > 0 {
			fr := &work[len(work)-1]
			if fr.ci == 0 {
				index[fr.n] = next
				low[fr.n] = next
				next++
				stack = append(stack, fr.n)
				onStack[fr.n] = true
			}
			ss := succs(fr.n)
			advanced := false
			for fr.ci < len(ss) {
				m := ss[fr.ci]
				fr.ci++
				if _, seen := index[m]; !seen {
					work = append(work, frame{n: m})
					advanced = true
					break
				}
				if onStack[m] && index[m] < low[fr.n] {
					low[fr.n] = index[m]
				}
			}
			if advanced {
				continue
			}
			n := fr.n
			work = work[:len(work)-1]
			if len(work) > 0 {
				parent := work[len(work)-1].n
				if low[n] < low[parent] {
					low[parent] = low[n]
				}
			}
			if low[n] == index[n] {
				var scc []string
				for {
					m := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[m] = false
					scc = append(scc, m)
					if m == n {
						break
					}
				}
				if len(scc) > 1 {
					sort.Strings(scc)
					label := strings.Join(scc, " -> ")
					for _, m := range scc {
						out[m] = label
					}
				}
			}
		}
	}
	return out
}
