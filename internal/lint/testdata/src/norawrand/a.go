package norawrand

import "math/rand"

const fixedSeed = 42

func violations(seed int64) {
	_ = rand.Intn(10)                  // want "global math/rand.Intn draws from process-global state"
	_ = rand.Float64()                 // want "global math/rand.Float64 draws from process-global state"
	rand.Shuffle(3, func(i, j int) {}) // want "global math/rand.Shuffle draws from process-global state"
	_ = rand.NewSource(42)             // want "constant seed is not derived"
	_ = rand.NewSource(fixedSeed)      // want "constant seed is not derived"
}

func idiomatic(seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x7e77))
	_ = rng.Intn(10)
	rng2 := rand.New(rand.NewSource(seed + 3))
	_ = rng2.Float64()
	src := rand.NewSource(seed)
	_ = src
}
