package audit

import (
	"math"
	"strings"
	"testing"

	"mba/internal/api"
	"mba/internal/serve"
)

// serviceFixture builds a minimal clean trace: one charged run, one
// free cache hit, one well-formed shed.
func serviceFixture() ServiceTrace {
	nan := math.NaN()
	led := api.NewLedger(1000)
	led.Register(0, 600)
	led.Register(1, 400)
	led.Reserve(0, 100)
	led.Commit(0, 100)
	return ServiceTrace{
		Requests: []serve.Request{
			{ID: "a", Tenant: "gold"}, {ID: "b", Tenant: "gold"}, {ID: "c", Tenant: "bronze"},
		},
		Responses: []serve.Response{
			{ID: "a", Tenant: "gold", Status: serve.StatusOK, Budget: 100, Cost: 100, Charged: 100,
				Estimate: 4.5, EstimateBits: math.Float64bits(4.5)},
			{ID: "b", Tenant: "gold", Status: serve.StatusOK, Budget: 100, CacheHit: true,
				Estimate: 4.5, EstimateBits: math.Float64bits(4.5)},
			{ID: "c", Tenant: "bronze", Status: serve.StatusShed, Reason: serve.ShedOverload,
				Degraded: true, Estimate: serve.Float(nan), EstimateBits: math.Float64bits(nan)},
		},
		Ledger:  led.Snapshot(),
		Quota:   map[string]int{"gold": 600, "bronze": 400},
		Account: map[string]int{"gold": 0, "bronze": 1},
		OfflineBits: map[string]uint64{
			"a": math.Float64bits(4.5),
		},
		OfflineCost: map[string]int{"a": 100},
	}
}

func TestCheckServiceClean(t *testing.T) {
	r := Auditor{}.CheckService(serviceFixture())
	if !r.OK() {
		t.Fatalf("clean trace flagged: %v", r.Violations)
	}
	if r.Checks == 0 {
		t.Fatal("no checks ran")
	}
}

func TestCheckServiceCatches(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(*ServiceTrace)
		keyword string
	}{
		{"dropped response", func(tr *ServiceTrace) {
			tr.Responses = tr.Responses[:2]
		}, "serve-no-silent-drop"},
		{"duplicate id", func(tr *ServiceTrace) {
			tr.Responses[1].ID = "a"
		}, "serve-no-silent-drop"},
		{"unknown status", func(tr *ServiceTrace) {
			tr.Responses[0].Status = "meh"
		}, "serve-no-silent-drop"},
		{"charged shed", func(tr *ServiceTrace) {
			tr.Responses[2].Charged = 5
		}, "serve-shed-wellformed"},
		{"shed without reason", func(tr *ServiceTrace) {
			tr.Responses[2].Reason = ""
		}, "serve-shed-wellformed"},
		{"shed with estimate", func(tr *ServiceTrace) {
			tr.Responses[2].EstimateBits = math.Float64bits(3.0)
		}, "serve-shed-wellformed"},
		{"charged cache hit", func(tr *ServiceTrace) {
			tr.Responses[1].Charged = 10
		}, "serve-free-riders"},
		{"charge beyond grant", func(tr *ServiceTrace) {
			tr.Responses[0].Charged = 150
		}, "serve-budget-bound"},
		{"bit divergence", func(tr *ServiceTrace) {
			tr.OfflineBits["a"] = math.Float64bits(9.9)
		}, "serve-bit-identity"},
		{"cost divergence", func(tr *ServiceTrace) {
			tr.OfflineCost["a"] = 99
		}, "serve-bit-identity"},
		{"quota overrun", func(tr *ServiceTrace) {
			tr.Quota["gold"] = 50
		}, "serve-quota"},
		{"ledger drift", func(tr *ServiceTrace) {
			tr.Responses[0].Charged = 90
			tr.Responses[0].Budget = 90
			tr.Responses[0].Cost = 90
		}, "ledger-"},
	}
	for _, tc := range cases {
		tr := serviceFixture()
		tc.mutate(&tr)
		r := Auditor{}.CheckService(tr)
		if r.OK() {
			t.Errorf("%s: not flagged", tc.name)
			continue
		}
		found := false
		for _, v := range r.Violations {
			if strings.HasPrefix(v.Invariant, tc.keyword) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: flagged but not as %s*: %v", tc.name, tc.keyword, r.Violations)
		}
	}
}
