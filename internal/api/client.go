package api

import (
	"errors"
	"time"

	"mba/internal/model"
)

// Client wraps a Server with response caching, call accounting, retry
// of transient faults, and an optional hard budget. All estimators in
// internal/core consume this type; Client.Cost() is the query cost the
// paper's experiments plot on their y-axes.
//
// Caching reflects what any sane crawler does: results for a user are
// kept locally, so revisiting a node during a random walk costs
// nothing. The paper's "single cache" optimization for ESTIMATE-p
// (§5.2) falls out of this for free.
type Client struct {
	srv *Server
	// Budget is the maximum number of API calls; 0 means unlimited.
	Budget int
	// MaxRetries bounds transparent retries of ErrTransient (each retry
	// consumes budget).
	MaxRetries int

	calls int

	connCache map[int64][]int64
	tlCache   map[int64]model.Timeline
	privCache map[int64]bool
	searches  map[string][]int64
}

// NewClient returns a caching client over srv with the given budget
// (0 = unlimited).
func NewClient(srv *Server, budget int) *Client {
	return &Client{
		srv:        srv,
		Budget:     budget,
		MaxRetries: 3,
		connCache:  make(map[int64][]int64),
		tlCache:    make(map[int64]model.Timeline),
		privCache:  make(map[int64]bool),
		searches:   make(map[string][]int64),
	}
}

// Cost returns the number of API calls issued so far.
func (c *Client) Cost() int { return c.calls }

// Remaining returns the remaining budget, or -1 if unlimited.
func (c *Client) Remaining() int {
	if c.Budget <= 0 {
		return -1
	}
	r := c.Budget - c.calls
	if r < 0 {
		r = 0
	}
	return r
}

// Exhausted reports whether the budget is spent.
func (c *Client) Exhausted() bool { return c.Budget > 0 && c.calls >= c.Budget }

// ResetCost zeroes the call counter but keeps the cache (used when a
// harness wants to charge setup separately).
func (c *Client) ResetCost() { c.calls = 0 }

// VirtualDuration translates the accumulated call count into the
// wall-clock time the run would need on the real platform under its
// rate limit — e.g., Twitter's 180 calls per 15 minutes.
func (c *Client) VirtualDuration() time.Duration {
	p := c.srv.Preset()
	if p.RateLimitCalls <= 0 {
		return 0
	}
	windows := (c.calls + p.RateLimitCalls - 1) / p.RateLimitCalls
	return time.Duration(windows) * p.RateLimitWindow
}

// Preset exposes the server's interface parameters.
func (c *Client) Preset() Preset { return c.srv.Preset() }

func (c *Client) charge(n int) error {
	if c.Budget > 0 && c.calls+n > c.Budget {
		c.calls = c.Budget
		return ErrBudgetExhausted
	}
	c.calls += n
	return nil
}

// withRetry runs fn, retrying transient errors up to MaxRetries times.
// Every attempt's cost is charged.
func (c *Client) withRetry(fn func() (int, error)) error {
	var err error
	for attempt := 0; attempt <= c.MaxRetries; attempt++ {
		var cost int
		cost, err = fn()
		if chargeErr := c.charge(cost); chargeErr != nil {
			return chargeErr
		}
		if !errors.Is(err, ErrTransient) {
			return err
		}
	}
	return err
}

// Search returns seed users who recently posted the keyword (cached).
func (c *Client) Search(keyword string) ([]int64, error) {
	if hits, ok := c.searches[keyword]; ok {
		return hits, nil
	}
	var hits []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		hits, cost, err = c.srv.Search(keyword)
		return cost, err
	})
	if err != nil {
		return nil, err
	}
	c.searches[keyword] = hits
	return hits, nil
}

// Connections returns u's neighbors (cached). Private users return
// ErrPrivate; the (negative) result is cached too, so the probe is
// charged only once.
func (c *Client) Connections(u int64) ([]int64, error) {
	if c.privCache[u] {
		return nil, ErrPrivate
	}
	if ns, ok := c.connCache[u]; ok {
		return ns, nil
	}
	var ns []int64
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		ns, cost, err = c.srv.Connections(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return nil, err
	}
	if err != nil {
		return nil, err
	}
	c.connCache[u] = ns
	return ns, nil
}

// Timeline returns u's visible timeline (cached).
func (c *Client) Timeline(u int64) (model.Timeline, error) {
	if c.privCache[u] {
		return model.Timeline{}, ErrPrivate
	}
	if tl, ok := c.tlCache[u]; ok {
		return tl, nil
	}
	var tl model.Timeline
	err := c.withRetry(func() (int, error) {
		var cost int
		var err error
		tl, cost, err = c.srv.Timeline(u)
		return cost, err
	})
	if errors.Is(err, ErrPrivate) {
		c.privCache[u] = true
		return model.Timeline{}, err
	}
	if err != nil {
		return model.Timeline{}, err
	}
	c.tlCache[u] = tl
	return tl, nil
}
