package core

import (
	"mba/internal/api"
	"mba/internal/model"
)

// Checkpoint algorithm families.
const (
	algoSRW  = "srw"
	algoTARW = "tarw"
)

// Checkpoint captures the resumable state of an estimation run: the
// walk's collected samples (chain entries or per-walk Hansen–Hurwitz
// estimates), the current position, the ESTIMATE-p probability cache,
// the selected interval, the cumulative cost/accounting of every
// segment so far, and a snapshot of the API client's response caches.
//
// Every Result carries one. When a run is interrupted — budget
// exhaustion, an outage that survives the retry policy, a tripped
// circuit breaker — pass the checkpoint to SRWOptions.Resume or
// TARWOptions.Resume on a session over a fresh Client: the cached
// responses are replayed at zero cost, so already-spent API calls are
// never repaid, and the reported Cost/Stats stay cumulative and
// truthful across segments.
type Checkpoint struct {
	algo       string
	segments   int
	priorCost  int
	priorStats api.Stats
	priorHeal  HealStats
	// priorDrained is the cumulative count of free cache-drained steps
	// (see Result.DrainedSteps) across all prior segments.
	priorDrained int
	interval     model.Tick
	cache        *api.CacheSnapshot
	// breaker carries the client's circuit-breaker state: a breaker
	// tripped by an ongoing outage must stay tripped after a resume,
	// otherwise the fresh client silently forgets the outage.
	breaker api.BreakerState
	traj    []Point

	// MA-SRW / M&R state.
	chain   []srwSample
	cur     int64
	haveCur bool
	// parked records that the segment ended on a yield-mode throttle
	// (api.ErrThrottled): the walk is positioned at a cache frontier
	// waiting for the rate-limit window, not broken. A resumed segment
	// uses this to attribute its free warm-cache prefix to DrainedSteps.
	parked bool

	// MA-TARW state.
	sumEsts, cntEsts, seedEsts []float64
	zeroPaths                  int
	pUp, pDown                 map[int64]*pStat
}

// Algo names the algorithm family the checkpoint belongs to ("srw"
// covers MA-SRW, the SRW baselines, and M&R; "tarw" is MA-TARW).
func (ck *Checkpoint) Algo() string { return ck.algo }

// Segments returns how many run segments produced this checkpoint.
func (ck *Checkpoint) Segments() int { return ck.segments }

// SpentCost returns the cumulative API calls charged across all
// segments — the cost a resumed run starts from (and never repays).
func (ck *Checkpoint) SpentCost() int { return ck.priorCost }

// SpentStats returns the cumulative accounting across all segments.
func (ck *Checkpoint) SpentStats() api.Stats { return ck.priorStats }

// Healed returns the cumulative heal statistics across all segments.
func (ck *Checkpoint) Healed() HealStats { return ck.priorHeal }

// Drained returns the cumulative free cache-drained steps across all
// segments (see Result.DrainedSteps).
func (ck *Checkpoint) Drained() int { return ck.priorDrained }

// Parked reports whether the checkpointed segment ended on a
// yield-mode throttle (api.ErrThrottled): the walker is waiting out a
// rate-limit window at a cache frontier, not wedged. Schedulers use
// this to park the unit until the window reopens instead of counting
// the interruption against resume/heal limits.
func (ck *Checkpoint) Parked() bool { return ck.parked }

// Breaker returns the checkpointed circuit-breaker state.
func (ck *Checkpoint) Breaker() api.BreakerState { return ck.breaker }

// PMeans returns the settled ESTIMATE-p means carried by a MA-TARW
// checkpoint: per-node mean estimates of the bottom-top visit
// probability p̄ and the top-bottom probability p̃. Auditors use these
// to sanity-check the Hansen–Hurwitz weights; both maps are nil for
// SRW-family checkpoints.
func (ck *Checkpoint) PMeans() (up, down map[int64]float64) {
	conv := func(m map[int64]*pStat) map[int64]float64 {
		if m == nil {
			return nil
		}
		out := make(map[int64]float64, len(m))
		for u, st := range m {
			if st.n > 0 {
				out[u] = st.sum / float64(st.n)
			}
		}
		return out
	}
	return conv(ck.pUp), conv(ck.pDown)
}

// Samples returns the number of collected walk samples.
func (ck *Checkpoint) Samples() int {
	if ck.algo == algoTARW {
		return len(ck.sumEsts)
	}
	return len(ck.chain)
}

// CachedResponses returns the size of the carried API response cache.
func (ck *Checkpoint) CachedResponses() int { return ck.cache.Entries() }

// Cache returns the carried API response snapshot (nil-safe to import
// into a fresh client). Auditors and resume harnesses use it to replay
// already-paid responses at zero cost.
func (ck *Checkpoint) Cache() *api.CacheSnapshot { return ck.cache }

// restore primes a (possibly fresh) session with the checkpoint's
// cached API responses and level interval so resuming repays nothing.
func (ck *Checkpoint) restore(s *Session) {
	if ck.cache != nil {
		s.Client.ImportCache(ck.cache)
	}
	if ck.interval > 0 {
		s.SetInterval(ck.interval)
	}
	s.Client.RestoreBreaker(ck.breaker)
}

// copyPStats deep-copies a probability cache so a checkpoint is
// isolated from the continuing run's mutations.
func copyPStats(m map[int64]*pStat) map[int64]*pStat {
	out := make(map[int64]*pStat, len(m))
	for k, v := range m {
		c := *v
		out[k] = &c
	}
	return out
}
