package stats

import "math"

// KahanAdder accumulates float64 values with Kahan–Babuška–Neumaier
// compensated summation. The zero value is ready to use. Compared to a
// naive `sum += x` loop the result is far less sensitive to
// cancellation and to the order terms arrive in, which keeps estimator
// reductions stable across refactors — the floatsum analyzer in
// internal/lint points accumulation hot paths here.
type KahanAdder struct {
	sum float64
	c   float64 // running compensation for lost low-order bits
}

// Add folds x into the running sum.
func (a *KahanAdder) Add(x float64) {
	t := a.sum + x
	switch {
	case math.IsInf(t, 0):
		// Once the sum overflows, compensation would compute Inf-Inf
		// and poison the total with NaN; the naive result is correct.
	case math.Abs(a.sum) >= math.Abs(x):
		a.c += (a.sum - t) + x
	default:
		a.c += (x - t) + a.sum
	}
	a.sum = t
}

// Sum returns the compensated total of everything added so far.
func (a *KahanAdder) Sum() float64 { return a.sum + a.c }

// KahanSum returns the compensated sum of xs. It is the drop-in
// replacement for naive `for { sum += x }` accumulation.
func KahanSum(xs []float64) float64 {
	var a KahanAdder
	for _, x := range xs {
		a.Add(x)
	}
	return a.Sum()
}
