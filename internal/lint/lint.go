// Package lint implements mba-lint: a suite of domain-invariant static
// analyzers that mechanically enforce the properties the paper's
// accuracy/cost claims rest on — seed-determinism of every random
// draw, single-path budget accounting through api.Client, virtual
// (not wall-clock) time in estimators, checked budget errors,
// deterministic map iteration wherever order can leak into artifacts,
// and compensated float accumulation in estimator hot paths.
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built purely on the standard
// library's go/ast and go/types, because this repository vendors no
// third-party dependencies. cmd/mba-lint drives the suite standalone
// and as a `go vet -vettool` backend; internal/lint/linttest runs
// analyzers over `// want "regexp"` fixtures in the analysistest
// style.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-paragraph description of the enforced invariant.
	Doc string
	// Run inspects a package and reports violations through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one reported violation, with its position resolved.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// PkgBase returns the last element of the package import path, the
// unit analyzers scope their package allow/deny lists on.
func (p *Pass) PkgBase(pkgPath string) string {
	if i := strings.LastIndex(pkgPath, "/"); i >= 0 {
		return pkgPath[i+1:]
	}
	return pkgPath
}

// ImportedPkgPath resolves id to the import path of the package it
// names, or "" if id is not a package qualifier.
func (p *Pass) ImportedPkgPath(id *ast.Ident) string {
	if pn, ok := p.TypesInfo.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// namedRecv unwraps pointers and returns the named receiver type of a
// method selection, or nil.
func namedRecv(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// MethodOn reports whether call invokes a method with the given name
// on a named type declared as pkgName.typeName (pointer or value
// receiver). Matching is by package *name*, not path, so analysistest
// fixtures can stand in for the real internal/api package.
func (p *Pass) MethodOn(call *ast.CallExpr, pkgName, typeName string, methods map[string]bool) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if !methods[sel.Sel.Name] {
		return "", false
	}
	s := p.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	n := namedRecv(s.Recv())
	if n == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	if n.Obj().Name() != typeName || n.Obj().Pkg().Name() != pkgName {
		return "", false
	}
	return sel.Sel.Name, true
}

// ignoreDirective matches "lint:ignore <name>[ reason]" and
// "lint:ignore all[ reason]" inside a comment.
var ignoreDirective = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)`)

// ignoresFor maps line -> set of analyzer names suppressed on that
// line. A directive suppresses diagnostics on its own line (trailing
// comment) and on the line immediately below (comment above the
// statement).
func ignoresFor(fset *token.FileSet, f *ast.File) map[int]map[string]bool {
	out := make(map[int]map[string]bool)
	add := func(line, span int, name string) {
		for l := line; l <= line+span; l++ {
			if out[l] == nil {
				out[l] = make(map[string]bool)
			}
			out[l][name] = true
		}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := ignoreDirective.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			line := fset.Position(c.Pos()).Line
			add(line, 1, m[1])
		}
	}
	return out
}

// RunAnalyzer applies a to pkg and returns the surviving diagnostics
// (ignore directives already filtered), sorted by position.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	ignores := make(map[string]map[int]map[string]bool)
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		ignores[name] = ignoresFor(pkg.Fset, f)
	}
	var kept []Diagnostic
	for _, d := range pass.diags {
		byLine := ignores[d.Pos.Filename]
		if byLine != nil {
			if set := byLine[d.Pos.Line]; set != nil && (set[d.Analyzer] || set["all"]) {
				continue
			}
		}
		kept = append(kept, d)
	}
	sortDiagnostics(kept)
	return kept, nil
}

// RunAll applies every analyzer in as to every package in pkgs.
func RunAll(as []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range as {
			ds, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, ds...)
		}
	}
	sortDiagnostics(all)
	return all, nil
}

func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Pos.Filename != ds[j].Pos.Filename {
			return ds[i].Pos.Filename < ds[j].Pos.Filename
		}
		if ds[i].Pos.Line != ds[j].Pos.Line {
			return ds[i].Pos.Line < ds[j].Pos.Line
		}
		if ds[i].Pos.Column != ds[j].Pos.Column {
			return ds[i].Pos.Column < ds[j].Pos.Column
		}
		return ds[i].Analyzer < ds[j].Analyzer
	})
}

// All returns the full mba-lint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetSafe,
		CheckedCost,
		DetRange,
		FloatSum,
		GoSpawn,
		NoRawRand,
		NoWallClock,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
