package api

import (
	"errors"
	"testing"
	"time"
)

// noJitterPolicy returns a fully deterministic policy for wait-time
// assertions.
func noJitterPolicy() RetryPolicy {
	p := DefaultRetryPolicy()
	p.Jitter = 0
	return p
}

func TestRateLimitedNeverCharged(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 11})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.Policy.RateLimitWait = time.Minute

	_, err := cl.Connections(1)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited after exhausting retries, got %v", err)
	}
	if cl.Cost() != 0 {
		t.Errorf("429 rejections were charged: cost = %d", cl.Cost())
	}
	st := cl.Stats()
	wantHits := cl.Policy.MaxRetries + 1
	if st.RateLimitHits != wantHits {
		t.Errorf("RateLimitHits = %d, want %d", st.RateLimitHits, wantHits)
	}
	if st.Wait != time.Duration(wantHits)*time.Minute {
		t.Errorf("Wait = %v, want %v", st.Wait, time.Duration(wantHits)*time.Minute)
	}
	// Zero RateLimitWait falls back to the preset's full window.
	srv2 := NewServer(p, Twitter(), Faults{RateLimitProb: 1, Seed: 11})
	cl2 := NewClient(srv2, 0)
	cl2.Policy = noJitterPolicy()
	cl2.Policy.MaxRetries = 0
	if _, err := cl2.Connections(1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("want ErrRateLimited, got %v", err)
	}
	if cl2.Stats().Wait != Twitter().RateLimitWindow {
		t.Errorf("fallback wait = %v, want the preset window %v",
			cl2.Stats().Wait, Twitter().RateLimitWindow)
	}
}

func TestTransientBackoffAccrual(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{TransientProb: 1, Seed: 12})
	cl := NewClient(srv, 0)
	cl.Policy = RetryPolicy{MaxRetries: 2, BaseBackoff: time.Second, MaxBackoff: time.Hour}

	_, err := cl.Connections(1)
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("want ErrTransient after exhausting retries, got %v", err)
	}
	// Three attempts (initial + 2 retries), each charged one call.
	if cl.Cost() != 3 {
		t.Errorf("cost = %d, want 3 (every failed attempt charged)", cl.Cost())
	}
	st := cl.Stats()
	if st.Retries != 2 {
		t.Errorf("Retries = %d, want 2", st.Retries)
	}
	// Jitter 0: backoffs are exactly 1s then 2s.
	if st.Wait != 3*time.Second {
		t.Errorf("Wait = %v, want 3s (1s + 2s exponential backoff)", st.Wait)
	}
}

func TestBackoffCap(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{TransientProb: 1, Seed: 13})
	cl := NewClient(srv, 0)
	cl.Policy = RetryPolicy{MaxRetries: 5, BaseBackoff: time.Second, MaxBackoff: 2 * time.Second}

	_, err := cl.Connections(1)
	if !errors.Is(err, ErrTransient) {
		t.Fatal(err)
	}
	// 1s + 2s + 2s + 2s + 2s: doubling is capped at MaxBackoff.
	if cl.Stats().Wait != 9*time.Second {
		t.Errorf("Wait = %v, want 9s with MaxBackoff=2s", cl.Stats().Wait)
	}
}

func TestCircuitBreaker(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{TransientProb: 1, Seed: 14})
	cl := NewClient(srv, 0)
	cl.Policy = RetryPolicy{BreakerThreshold: 2, BreakerCooldown: time.Minute}

	// First logical failure: breaker counts but stays closed.
	_, err := cl.Connections(1)
	if !errors.Is(err, ErrTransient) || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("first failure should not trip the breaker: %v", err)
	}
	// Second consecutive failure trips it.
	_, err = cl.Connections(2)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen on trip, got %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Error("ErrCircuitOpen should wrap the cause")
	}
	if cl.Stats().CircuitTrips != 1 {
		t.Errorf("CircuitTrips = %d, want 1", cl.Stats().CircuitTrips)
	}
	// Half-open probe pays the cooldown and re-trips on failure.
	waitBefore := cl.Stats().Wait
	_, err = cl.Connections(3)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("failed half-open probe should re-trip, got %v", err)
	}
	if got := cl.Stats().Wait - waitBefore; got != time.Minute {
		t.Errorf("half-open probe waited %v, want the 1m cooldown", got)
	}
	if cl.Stats().CircuitTrips != 2 {
		t.Errorf("CircuitTrips = %d, want 2", cl.Stats().CircuitTrips)
	}
}

func TestCircuitBreakerClosesOnSuccess(t *testing.T) {
	p := testPlatform(t)
	// Outage window fails exactly the first OutageLength raw calls after
	// the scheduled start; afterwards the service is healthy again.
	srv := NewServer(p, Twitter(), Faults{TransientProb: 0.5, Seed: 15})
	cl := NewClient(srv, 0)
	cl.Policy = RetryPolicy{MaxRetries: 12, BreakerThreshold: 3, BreakerCooldown: time.Minute}
	// With retries much deeper than the fault rate warrants, calls
	// succeed and the breaker never trips.
	for u := int64(0); u < 20; u++ {
		if _, err := cl.Connections(u); err != nil {
			t.Fatalf("Connections(%d): %v", u, err)
		}
	}
	if cl.Stats().CircuitTrips != 0 {
		t.Errorf("CircuitTrips = %d, want 0 (successes reset the breaker)", cl.Stats().CircuitTrips)
	}
	if cl.Stats().Retries == 0 {
		t.Error("expected retries under 90% transient faults")
	}
}

func TestOutageRiddenOutByRetries(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{OutageMeanGap: 15, OutageLength: 3, Seed: 16})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.Policy.MaxRetries = 5 // deeper than any single outage

	// Retries advance the server's call clock, so a policy more patient
	// than OutageLength rides every outage out: no logical failures.
	for u := int64(0); u < 200; u++ {
		if _, err := cl.Connections(u); err != nil {
			t.Fatalf("Connections(%d) failed despite patient retries: %v", u, err)
		}
	}
	if cl.Stats().Retries == 0 {
		t.Error("no retries recorded; outage schedule never fired")
	}
}

func TestOutageOverwhelmsShallowRetries(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{OutageMeanGap: 10, OutageLength: 8, Seed: 17})
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	cl.Policy.MaxRetries = 1 // shallower than the outage length

	failures := 0
	for u := int64(0); u < 200; u++ {
		if _, err := cl.Connections(u); errors.Is(err, ErrTransient) {
			failures++
		}
	}
	if failures == 0 {
		t.Error("an 8-call outage should defeat a 1-retry policy at least once")
	}
}

func TestTruncationPartialCost(t *testing.T) {
	p := testPlatform(t)
	preset := Twitter()
	preset.ConnectionsPageSize = 1 // every multi-neighbor fetch is multi-page
	srv := NewServer(p, preset, Faults{TruncateProb: 1, Seed: 18})

	var hub int64 = -1
	for _, u := range p.Social.Nodes() {
		if p.Social.Degree(u) >= 3 {
			hub = u
			break
		}
	}
	if hub < 0 {
		t.Skip("no multi-page user found")
	}
	full := p.Social.Degree(hub)
	_, cost, err := srv.Connections(hub)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated, got %v", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Error("ErrTruncated must be retryable (wrap ErrTransient)")
	}
	if cost < 1 || cost >= full {
		t.Errorf("truncated cost = %d, want a strict prefix of %d pages", cost, full)
	}

	// The client charges each partial attempt and retries; with
	// TruncateProb=1 it ultimately fails, but the cost stays truthful
	// (every page fetched before each truncation is paid for).
	cl := NewClient(srv, 0)
	cl.Policy = noJitterPolicy()
	if _, err := cl.Connections(hub); !errors.Is(err, ErrTruncated) {
		t.Fatalf("want ErrTruncated through the client, got %v", err)
	}
	if cl.Cost() < cl.Policy.MaxRetries+1 {
		t.Errorf("cost = %d, want >= %d (each truncated attempt charged)",
			cl.Cost(), cl.Policy.MaxRetries+1)
	}
	if cl.Stats().Retries != cl.Policy.MaxRetries {
		t.Errorf("Retries = %d, want %d", cl.Stats().Retries, cl.Policy.MaxRetries)
	}
}

func TestSlowCallsAccrueVirtualWait(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{SlowCallProb: 1, SlowCallLatency: 2 * time.Second, Seed: 19})
	cl := NewClient(srv, 0)
	for u := int64(0); u < 10; u++ {
		if _, err := cl.Connections(u); err != nil {
			t.Fatal(err)
		}
	}
	if cl.Stats().Wait != 20*time.Second {
		t.Errorf("Wait = %v, want 20s (10 calls x 2s latency)", cl.Stats().Wait)
	}
	// 10 calls fit in the opening window, so the slow-call latency is
	// the whole virtual duration.
	if cl.VirtualDuration() != 20*time.Second {
		t.Errorf("VirtualDuration = %v should be exactly the slow-call wait", cl.VirtualDuration())
	}
}

func TestCacheSnapshotZeroCostReplay(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{})
	cl := NewClient(srv, 0)
	if _, err := cl.Search("privacy"); err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < 5; u++ {
		if _, err := cl.Connections(u); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Timeline(u); err != nil {
			t.Fatal(err)
		}
	}
	paid := cl.Cost()
	if paid == 0 {
		t.Fatal("no cost accumulated")
	}
	snap := cl.ExportCache()
	if snap.Entries() < 11 {
		t.Errorf("snapshot entries = %d, want >= 11", snap.Entries())
	}

	// Fresh server + client: replaying the same requests from the
	// imported snapshot costs nothing — spent budget is never repaid.
	cl2 := NewClient(NewServer(p, Twitter(), Faults{}), 0)
	cl2.ImportCache(snap)
	if _, err := cl2.Search("privacy"); err != nil {
		t.Fatal(err)
	}
	for u := int64(0); u < 5; u++ {
		if _, err := cl2.Connections(u); err != nil {
			t.Fatal(err)
		}
		if _, err := cl2.Timeline(u); err != nil {
			t.Fatal(err)
		}
	}
	if cl2.Cost() != 0 {
		t.Errorf("replay from snapshot cost %d, want 0", cl2.Cost())
	}

	// Private-status entries replay too.
	psrv := NewServer(p, Twitter(), Faults{PrivateProb: 1, Seed: 5})
	pcl := NewClient(psrv, 0)
	if _, err := pcl.Connections(1); !errors.Is(err, ErrPrivate) {
		t.Fatal("want ErrPrivate")
	}
	pcl2 := NewClient(NewServer(p, Twitter(), Faults{PrivateProb: 1, Seed: 5}), 0)
	pcl2.ImportCache(pcl.ExportCache())
	if _, err := pcl2.Connections(1); !errors.Is(err, ErrPrivate) {
		t.Fatal("private status lost in snapshot")
	}
	if pcl2.Cost() != 0 {
		t.Errorf("cached private probe charged %d", pcl2.Cost())
	}
}

func TestResetCostResetsFullAccounting(t *testing.T) {
	p := testPlatform(t)
	srv := NewServer(p, Twitter(), Faults{TransientProb: 0.5, RateLimitProb: 0.2, Seed: 20})
	cl := NewClient(srv, 0)
	cl.Policy.MaxRetries = 6
	for u := int64(0); u < 30; u++ {
		cl.Connections(u)
	}
	st := cl.Stats()
	if st.Calls == 0 || st.Retries == 0 || st.RateLimitHits == 0 || st.Wait == 0 {
		t.Fatalf("fixture did not exercise the accounting: %+v", st)
	}
	cl.ResetCost()
	if cl.Stats() != (Stats{}) {
		t.Errorf("ResetCost left accounting behind: %+v", cl.Stats())
	}
	// Caches survive: re-reading a cached user is free.
	if _, err := cl.Connections(0); err != nil {
		t.Fatal(err)
	}
	if cl.Cost() != 0 {
		t.Error("cache lost after ResetCost")
	}
}
