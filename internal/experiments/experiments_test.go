package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mba/internal/core"
	"mba/internal/workload"
)

// fastOpts keeps experiment smoke tests quick: the small platform, a
// tight budget, and a single trial.
func fastOpts() Options {
	return Options{
		Scale:  workload.Test,
		Seed:   7,
		Trials: 1,
		Budget: 15000,
		Errors: []float64{0.10, 0.25},
	}
}

func TestCostAtError(t *testing.T) {
	traj := []core.Point{
		{Cost: 100, Estimate: 50},  // err 0.50
		{Cost: 200, Estimate: 105}, // err 0.05
		{Cost: 300, Estimate: 130}, // err 0.30
		{Cost: 400, Estimate: 102}, // err 0.02
		{Cost: 500, Estimate: 98},  // err 0.02
	}
	if got := CostAtError(traj, 100, 0.10); got != 400 {
		t.Errorf("CostAtError(0.10) = %d, want 400 (last excursion at 300)", got)
	}
	if got := CostAtError(traj, 100, 0.40); got != 200 {
		t.Errorf("CostAtError(0.40) = %d, want 200", got)
	}
	if got := CostAtError(traj, 100, 0.01); got != -1 {
		t.Errorf("CostAtError(0.01) = %d, want -1", got)
	}
	if got := CostAtError(nil, 100, 0.1); got != -1 {
		t.Errorf("empty trajectory = %d, want -1", got)
	}
	costs := CostAtErrors(traj, 100, []float64{0.4, 0.1})
	if costs[0] != 200 || costs[1] != 400 {
		t.Errorf("CostAtErrors = %v", costs)
	}
}

func TestMedianCost(t *testing.T) {
	if got := medianCost([]int{100, 300, 200}); got != 200 {
		t.Errorf("median = %d, want 200", got)
	}
	if got := medianCost([]int{100, -1, -1}); got != -1 {
		t.Errorf("majority unreached = %d, want -1", got)
	}
	if got := medianCost([]int{100, -1}); got != 100 {
		t.Errorf("half reached = %d, want 100", got)
	}
	if got := medianCost(nil); got != -1 {
		t.Errorf("empty = %d, want -1", got)
	}
}

func TestTableFormatAndCSV(t *testing.T) {
	tab := Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "x,y"}, {"2", `q"z`}},
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	if !strings.Contains(buf.String(), "demo") || !strings.Contains(buf.String(), "x,y") {
		t.Errorf("Format output missing content:\n%s", buf.String())
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, `"x,y"`) || !strings.Contains(got, `"q""z"`) {
		t.Errorf("CSV escaping wrong:\n%s", got)
	}
}

func TestEdgeHashStable(t *testing.T) {
	a := edgeHash(3, 9, 42)
	b := edgeHash(9, 3, 42)
	if a != b {
		t.Error("edgeHash not symmetric")
	}
	if a < 0 || a >= 1 {
		t.Errorf("edgeHash out of range: %v", a)
	}
	if edgeHash(3, 9, 43) == a {
		t.Error("salt has no effect")
	}
}

func TestTable2Smoke(t *testing.T) {
	tab, err := Table2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(workload.Table2Keywords()) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(workload.Table2Keywords()))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("ragged row: %v", row)
		}
	}
}

func TestFigure7Smoke(t *testing.T) {
	tab, err := Figure7(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != (workload.HorizonDays+6)/7 {
		t.Errorf("weeks = %d", len(tab.Rows))
	}
}

func TestFigure2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	tab, err := Figure2(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 error levels", len(tab.Rows))
	}
	var buf bytes.Buffer
	tab.Format(&buf)
	t.Log("\n" + buf.String())
}

func TestFigure9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	tab, err := Figure9(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) == 0 {
		t.Fatal("no trajectory rows")
	}
	seen := map[string]bool{}
	for _, row := range tab.Rows {
		seen[row[0]] = true
	}
	if !seen["MA-SRW"] || !seen["MA-TARW"] {
		t.Errorf("missing algo trajectories: %v", seen)
	}
}

func TestFigure4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	opts := fastOpts()
	opts.Budget = 6000
	tab, err := Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 removal fractions", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != 4 {
			t.Fatalf("ragged row: %v", row)
		}
	}
}

func TestFigure5Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	opts := fastOpts()
	opts.Budget = 6000
	tab, err := Figure5(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3*7 {
		t.Fatalf("rows = %d, want 21 (3 keywords x 7 intervals)", len(tab.Rows))
	}
}

func TestAblationLatticeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	opts := fastOpts()
	opts.Budget = 6000
	tab, err := AblationLattice(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
}

func TestCountComparisonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("walk experiment")
	}
	opts := fastOpts()
	opts.Budget = 8000
	tab, err := Figure10(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 4 {
		t.Fatalf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

// TestCSVDeterministic runs the cheap emitters twice and requires
// byte-identical CSV. Every `range` over a map starts at a random
// bucket, so two same-process runs exercise different iteration
// orders; any order-dependence in graph traversal or float reduction
// (non-associative addition) shows up as a byte diff here.
func TestCSVDeterministic(t *testing.T) {
	emitters := []struct {
		name string
		f    func(Options) (Table, error)
	}{
		{"table2", Table2},
		{"figure7", Figure7},
	}
	for _, em := range emitters {
		csv := func() string {
			tab, err := em.f(fastOpts())
			if err != nil {
				t.Fatalf("%s: %v", em.name, err)
			}
			var buf bytes.Buffer
			if err := tab.WriteCSV(&buf); err != nil {
				t.Fatalf("%s: %v", em.name, err)
			}
			return buf.String()
		}
		if a, b := csv(), csv(); a != b {
			t.Errorf("%s: CSV differs between two identical runs:\n--- run 1\n%s--- run 2\n%s", em.name, a, b)
		}
	}
}
