package core

import (
	"mba/internal/api"
	"mba/internal/model"
)

// Checkpoint algorithm families.
const (
	algoSRW  = "srw"
	algoTARW = "tarw"
)

// Checkpoint captures the resumable state of an estimation run: the
// walk's collected samples (chain entries or per-walk Hansen–Hurwitz
// estimates), the current position, the ESTIMATE-p probability cache,
// the selected interval, the cumulative cost/accounting of every
// segment so far, and a snapshot of the API client's response caches.
//
// Every Result carries one. When a run is interrupted — budget
// exhaustion, an outage that survives the retry policy, a tripped
// circuit breaker — pass the checkpoint to SRWOptions.Resume or
// TARWOptions.Resume on a session over a fresh Client: the cached
// responses are replayed at zero cost, so already-spent API calls are
// never repaid, and the reported Cost/Stats stay cumulative and
// truthful across segments.
type Checkpoint struct {
	algo       string
	segments   int
	priorCost  int
	priorStats api.Stats
	interval   model.Tick
	cache      *api.CacheSnapshot
	traj       []Point

	// MA-SRW / M&R state.
	chain   []srwSample
	cur     int64
	haveCur bool

	// MA-TARW state.
	sumEsts, cntEsts, seedEsts []float64
	zeroPaths                  int
	pUp, pDown                 map[int64]*pStat
}

// Algo names the algorithm family the checkpoint belongs to ("srw"
// covers MA-SRW, the SRW baselines, and M&R; "tarw" is MA-TARW).
func (ck *Checkpoint) Algo() string { return ck.algo }

// Segments returns how many run segments produced this checkpoint.
func (ck *Checkpoint) Segments() int { return ck.segments }

// SpentCost returns the cumulative API calls charged across all
// segments — the cost a resumed run starts from (and never repays).
func (ck *Checkpoint) SpentCost() int { return ck.priorCost }

// SpentStats returns the cumulative accounting across all segments.
func (ck *Checkpoint) SpentStats() api.Stats { return ck.priorStats }

// Samples returns the number of collected walk samples.
func (ck *Checkpoint) Samples() int {
	if ck.algo == algoTARW {
		return len(ck.sumEsts)
	}
	return len(ck.chain)
}

// CachedResponses returns the size of the carried API response cache.
func (ck *Checkpoint) CachedResponses() int { return ck.cache.Entries() }

// restore primes a (possibly fresh) session with the checkpoint's
// cached API responses and level interval so resuming repays nothing.
func (ck *Checkpoint) restore(s *Session) {
	if ck.cache != nil {
		s.Client.ImportCache(ck.cache)
	}
	if ck.interval > 0 {
		s.SetInterval(ck.interval)
	}
}

// copyPStats deep-copies a probability cache so a checkpoint is
// isolated from the continuing run's mutations.
func copyPStats(m map[int64]*pStat) map[int64]*pStat {
	out := make(map[int64]*pStat, len(m))
	for k, v := range m {
		c := *v
		out[k] = &c
	}
	return out
}
