package core

import "errors"

// AutosavePolicy makes a run persist its own checkpoints as it walks,
// bounding how much spent budget a process crash can forfeit. When
// enabled, the runner hands a fresh cumulative checkpoint to Save
// whenever at least EveryCalls charged API calls accrued since the
// last save (measured on the cumulative cost clock, so the cadence
// survives resumes). Saves happen at sample boundaries — the walk
// state between samples is not checkpointable — so a save's clock is
// the first boundary at or past the cadence mark.
//
// Save failures are not ignored: a run that cannot persist progress
// degrades with ErrAutosave (checkpoint intact, in memory) instead of
// walking on and silently widening the at-risk budget window.
//
// The interrupt paths (park, degrade, budget exhaustion) already
// return a checkpoint in the Result; persisting those is the caller's
// half of the policy.
type AutosavePolicy struct {
	// EveryCalls is the autosave cadence in charged API calls.
	EveryCalls int
	// Save persists the checkpoint. It must not retain the pointer's
	// session aliases beyond the call if it mutates anything; the
	// checkpoint itself is isolated by construction.
	Save func(*Checkpoint) error
}

func (p AutosavePolicy) enabled() bool { return p.Save != nil && p.EveryCalls > 0 }

// ErrAutosave marks a run degraded because its autosave sink failed.
// The Result still carries the checkpoint that could not be persisted.
var ErrAutosave = errors.New("core: autosave failed")
