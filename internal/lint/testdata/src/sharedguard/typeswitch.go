package sharedguard

import "sync"

type tsBox struct {
	mu sync.Mutex
	n  int
}

// typeSwitchLock: the lock is taken in only one arm of a type switch,
// so the write after the merge is unguarded on every other arm. The
// self-concurrent loop spawn makes the write race its own instances.
func typeSwitchLock(v interface{}) int {
	b := &tsBox{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch v.(type) {
			case int:
				b.mu.Lock()
				defer b.mu.Unlock()
			}
			b.n++ // want "reachable from multiple goroutines"
		}()
	}
	wg.Wait()
	return b.n
}

// typeSwitchLockAll: every arm (including default) locks before the
// shared write — consistent on all paths, no finding.
func typeSwitchLockAll(v interface{}) int {
	b := &tsBox{}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			switch v.(type) {
			case int:
				b.mu.Lock()
			default:
				b.mu.Lock()
			}
			b.n++
			b.mu.Unlock()
		}()
	}
	wg.Wait()
	return b.n
}
