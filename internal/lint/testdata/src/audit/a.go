// Package audit is a budgetsafe fixture: the invariant auditor must be
// budget-free, replaying only cached api.Client responses, so raw
// Server access (fresh, uncharged data) is forbidden there like in the
// estimator packages.
package audit

import "api"

type auditor struct {
	srv    *api.Server
	client *api.Client
}

func (a *auditor) violations(u int64) {
	_, _, _ = a.srv.Connections(u) // want "direct api.Server.Connections bypasses Client cost accounting"
	_, _, _ = a.srv.Timeline(u)    // want "direct api.Server.Timeline bypasses Client cost accounting"
}

func (a *auditor) idiomatic(u int64) error {
	before := a.client.Cost()
	if _, err := a.client.Connections(u); err != nil {
		return err
	}
	tl, err := a.client.Timeline(u)
	_, _ = tl, before
	return err
}
