package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
)

// faultSeedStride decorrelates per-request fault schedules, the same
// way internal/fleet derives per-walker fault seeds: each request gets
// its own api.Server whose fault RNG is a function of the request
// seed, so fault schedules replay identically at any parallelism and
// an offline rerun of the same request observes the same faults.
const faultSeedStride = 7368787

// walkSpec is everything that determines a walk's outcome. Service
// execution and RunOffline share it, which is what makes the audit's
// bit-identity check meaningful: the service promises that an admitted
// request returns exactly what this spec returns offline.
type walkSpec struct {
	platform *platform.Platform
	preset   api.Preset
	faults   api.Faults
	q        query.Query
	algo     string
	budget   int
	seed     int64
	interval model.Tick
	// deadline bounds the walk in virtual time (0 = none).
	deadline time.Duration
	// maxResumes bounds the automatic fault ride-out loop.
	maxResumes int
	// resume continues from a cached partial: a Rebase()d checkpoint
	// whose warm response cache replays the paid prefix free.
	resume *core.Checkpoint
}

// backend builds the request's own fault-seeded server over the shared
// read-only platform.
func (w walkSpec) backend() *api.Server {
	f := w.faults
	if f != (api.Faults{}) {
		f.Seed = f.Seed + w.seed*faultSeedStride
	}
	return api.NewServer(w.platform, w.preset, f)
}

// runAlgo dispatches one walk segment, mirroring the mba facade's
// algorithm switch (MA-TARW with the paper's COUNT/SUM lattice
// settings, MA-SRW and M&R over the level view). The interval is
// pinned — never pilot-selected — so resumed replays stay
// bit-identical across segments.
func runAlgo(ctx context.Context, s *core.Session, algo string, seed int64, ck *core.Checkpoint, agg query.Aggregate) (core.Result, error) {
	switch algo {
	case AlgoSRW:
		return core.RunSRW(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx})
	case AlgoMR:
		return core.RunMR(s, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx})
	default:
		tarw := core.TARWOptions{Seed: seed, Resume: ck, Ctx: ctx}
		if agg != query.Avg {
			tarw.AllowCrossLevel = true
			tarw.WeightClip = 100
			tarw.PEstimates = 5
		}
		return core.RunTARW(s, tarw)
	}
}

// run executes the spec to completion: an initial segment plus the
// bounded fault ride-out loop (degraded segments resume from their
// checkpoint on a fresh client while budget and deadline headroom
// remain — cached responses replay free, so spent calls are never
// repaid). Budget exhaustion is a clean outcome, not an error.
func (w walkSpec) run(ctx context.Context) (core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	srv := w.backend()
	recovered := 0
	if w.resume != nil {
		recovered = w.resume.SpentCost()
	}
	newClient := func(spent int, stats api.Stats) (*api.Client, bool) {
		budget := w.budget - spent
		if budget <= 0 {
			return nil, false
		}
		c := api.NewClient(srv, budget)
		if w.deadline > 0 {
			left := w.deadline - api.VirtualOf(w.preset, stats)
			if left <= 0 {
				return nil, false
			}
			c.Deadline = left
		}
		c.WithContext(ctx)
		return c, true
	}

	var prior api.Stats
	if w.resume != nil {
		prior = w.resume.SpentStats()
	}
	client, ok := newClient(recovered, prior)
	if !ok {
		// The cached prefix alone overruns the budget or deadline; the
		// caller should retry without the resume.
		return core.Result{}, errNoHeadroom
	}
	session, err := core.NewSession(client, w.q, w.interval)
	if err != nil {
		return core.Result{}, err
	}
	res, err := runAlgo(ctx, session, w.algo, w.seed, w.resume, w.q.Agg)
	if err != nil {
		return core.Result{}, err
	}
	for resumes := 0; res.Degraded && res.Cost < w.budget && resumes < w.maxResumes; resumes++ {
		if errors.Is(res.DegradedBy, api.ErrCanceled) || errors.Is(res.DegradedBy, api.ErrDeadlineExceeded) {
			break
		}
		client, ok = newClient(res.Cost, res.Stats)
		if !ok {
			break
		}
		session, err = core.NewSession(client, w.q, w.interval)
		if err != nil {
			break
		}
		prev := res
		res, err = runAlgo(ctx, session, w.algo, w.seed, prev.Checkpoint, w.q.Agg)
		if err != nil {
			return core.Result{}, err
		}
		if res.Cost <= prev.Cost && res.Samples <= prev.Samples {
			break // no progress; report the degraded partial
		}
	}
	return res, nil
}

// errNoHeadroom reports that a cached prefix already covers the
// request's whole budget or deadline; the walk must run fresh.
var errNoHeadroom = errors.New("serve: resume prefix exceeds budget or deadline headroom")

// OfflineSpec describes an offline rerun of one admitted request, for
// audits: same platform, same fault derivation, same granted budget
// and deadline headroom as the service run.
type OfflineSpec struct {
	Platform *platform.Platform
	Preset   api.Preset
	// Faults is the service's base fault profile; the per-request
	// derivation is applied internally, exactly as the service does.
	Faults api.Faults
	Query  query.Query
	// Algo, Budget, Seed and Deadline come from the service Response
	// (Budget is the granted budget; Deadline the headroom at
	// dispatch).
	Algo     string
	Budget   int
	Seed     int64
	Deadline time.Duration
	// Interval and MaxResumes must match the service Config (their
	// zero values resolve to the same defaults).
	Interval   model.Tick
	MaxResumes int
}

// RunOffline executes a request the way the service would, minus the
// service: no queueing, no cache, no quota. audit.CheckService
// compares its estimate bits and cost against the served response.
func RunOffline(spec OfflineSpec) (core.Result, error) {
	if spec.Platform == nil {
		return core.Result{}, fmt.Errorf("serve: OfflineSpec.Platform is required")
	}
	if spec.Preset.Name == "" {
		spec.Preset = api.Twitter()
	}
	if spec.Interval <= 0 {
		spec.Interval = model.Day
	}
	if spec.MaxResumes <= 0 {
		spec.MaxResumes = 3
	}
	if spec.Algo == "" {
		spec.Algo = AlgoTARW
	}
	w := walkSpec{
		platform:   spec.Platform,
		preset:     spec.Preset,
		faults:     spec.Faults,
		q:          spec.Query,
		algo:       spec.Algo,
		budget:     spec.Budget,
		seed:       spec.Seed,
		interval:   spec.Interval,
		deadline:   spec.Deadline,
		maxResumes: spec.MaxResumes,
	}
	return w.run(context.Background())
}

// execute runs an admitted task: dispatch-time cache re-check, partial
// resume, the walk itself, then settlement (ledger commit/refund,
// breaker note, cache store, metrics). headroom is the virtual
// deadline budget left at dispatch. It takes and releases s.mu around
// the walk so live workers execute in parallel.
func (s *Service) execute(ctx context.Context, tk *task, headroom time.Duration) {
	s.mu.Lock()
	// The queue may have outlived the answer: an identical request
	// completed while this one waited.
	if !tk.req.NoCache {
		if e := s.cache.completed(tk.key, tk.granted, int64(headroom)); e != nil {
			s.ledger.Refund(tk.ten.account, tk.granted)
			s.fillFromCache(tk, e)
			s.breakerNote(tk.ten, false)
			s.mu.Unlock()
			return
		}
	}
	var resume *core.Checkpoint
	recovered := 0
	var recoveredStats api.Stats
	// Partial resume is only sound fault-free: under injected faults
	// the replayed suffix would meet a different fault schedule than
	// the uninterrupted run it must stay bit-identical to.
	if !tk.req.NoCache && s.cfg.Faults == (api.Faults{}) {
		if p := s.cache.bestPartial(tk.key, tk.granted); p != nil {
			resume = p.ck.Rebase()
			recovered = resume.SpentCost()
			recoveredStats = resume.SpentStats()
		}
	}
	s.mu.Unlock()

	w := walkSpec{
		platform:   s.cfg.Platform,
		preset:     s.preset,
		faults:     s.cfg.Faults,
		q:          tk.q,
		algo:       tk.req.Algo,
		budget:     tk.granted,
		seed:       tk.req.Seed,
		interval:   s.cfg.Interval,
		deadline:   headroom,
		maxResumes: s.cfg.MaxResumes,
		resume:     resume,
	}
	res, err := w.run(ctx)
	if err != nil && errors.Is(err, errNoHeadroom) && resume != nil {
		// The cached prefix is deeper than this request's headroom
		// allows; run fresh so the deadline semantics match offline.
		w.resume = nil
		recovered, recoveredStats = 0, api.Stats{}
		res, err = w.run(ctx)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	ten := tk.ten
	if err != nil {
		s.ledger.Refund(ten.account, tk.granted)
		s.unprobe(ten)
		tk.resp.Status = StatusError
		tk.resp.Err = err.Error()
		tk.resp.Budget = tk.granted
		s.met.Errors++
		return
	}

	charged := res.Cost - recovered
	if charged < 0 {
		charged = 0
	}
	if charged > tk.granted {
		charged = tk.granted
	}
	s.ledger.Commit(ten.account, charged)
	if rest := tk.granted - charged; rest > 0 {
		s.ledger.Refund(ten.account, rest)
	}

	reason := degradeReason(res)
	backendFault := reason == ReasonBackend
	s.breakerNote(ten, backendFault)

	// busy time is the virtual duration of the new work only; the
	// recovered prefix was already served (and waited for) by the run
	// that cached it.
	busy := s.virtualNs(res.Stats) - s.virtualNs(recoveredStats)
	if busy < 0 {
		busy = 0
	}

	tk.resp.Budget = tk.granted
	tk.resp.Estimate = Float(res.Estimate)
	tk.resp.EstimateBits = math.Float64bits(res.Estimate)
	tk.resp.Variance = Float(tailVariance(res.Trajectory))
	tk.resp.Cost = res.Cost
	tk.resp.Charged = charged
	tk.resp.Samples = res.Samples
	tk.resp.Retries = res.Stats.Retries
	tk.resp.RateLimitHits = res.Stats.RateLimitHits
	tk.resp.BusyNs = busy
	tk.resp.Resumed = recovered > 0
	if tk.resp.Resumed {
		s.met.Resumed++
	}
	switch {
	case res.Degraded:
		tk.resp.Status = StatusDegraded
		tk.resp.Reason = reason
		tk.resp.Degraded = true
		s.met.Degraded++
	case tk.pressure:
		// The walk finished cleanly, but on a pressure-tier budget: the
		// answer is a deliberate partial of what was asked for.
		tk.resp.Status = StatusDegraded
		tk.resp.Reason = ReasonPressure
		tk.resp.Degraded = true
		s.met.Degraded++
	default:
		tk.resp.Status = StatusOK
		s.met.Ok++
	}

	if !tk.req.NoCache {
		deadlined := errors.Is(res.DegradedBy, api.ErrDeadlineExceeded) || errors.Is(res.DegradedBy, api.ErrCanceled)
		s.cache.store(tk.key, tk.granted, res, s.virtualNs(res.Stats), deadlined, tk.resp.Status, tk.resp.Reason)
	}
}

// degradeReason classifies what degraded a result ("" when clean).
func degradeReason(res core.Result) string {
	if !res.Degraded {
		return ""
	}
	switch {
	case errors.Is(res.DegradedBy, api.ErrDeadlineExceeded):
		return ReasonDeadline
	case errors.Is(res.DegradedBy, api.ErrCanceled):
		return ReasonCanceled
	default:
		return ReasonBackend
	}
}
