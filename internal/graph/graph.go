// Package graph implements the undirected-graph machinery behind
// MICROBLOG-ANALYZER: an adjacency store for the social graph and its
// subgraphs, connected components (to measure the recall of the
// term-induced subgraph, Table 2 of the paper), graph conductance
// (Eq. 1, which drives the level-by-level design of §4), modularity
// (the paper's community-tightness measure), and common-neighbor
// statistics (Table 2, column 2).
//
// Node identifiers are int64 user IDs. The graph is simple: self loops
// and parallel edges are rejected at insert time.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an undirected simple graph over int64 node IDs.
// The zero value is not ready to use; call New.
type Graph struct {
	adj   map[int64][]int64 // sorted neighbor lists
	edges int
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{adj: make(map[int64][]int64)}
}

// NewWithCapacity returns an empty graph sized for n nodes.
func NewWithCapacity(n int) *Graph {
	return &Graph{adj: make(map[int64][]int64, n)}
}

// AddNode ensures u exists (possibly isolated). It is a no-op if u is
// already present.
func (g *Graph) AddNode(u int64) {
	if _, ok := g.adj[u]; !ok {
		g.adj[u] = nil
	}
}

// HasNode reports whether u is in the graph.
func (g *Graph) HasNode(u int64) bool {
	_, ok := g.adj[u]
	return ok
}

// insertSorted inserts v into the sorted slice s if absent, reporting
// whether it inserted.
func insertSorted(s []int64, v int64) ([]int64, bool) {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	if i < len(s) && s[i] == v {
		return s, false
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s, true
}

// AddEdge inserts the undirected edge {u,v}. Adding an existing edge is
// a no-op; self loops are rejected with an error.
func (g *Graph) AddEdge(u, v int64) error {
	if u == v {
		return fmt.Errorf("graph: self loop on node %d", u)
	}
	su, inserted := insertSorted(g.adj[u], v)
	g.adj[u] = su
	if !inserted {
		return nil
	}
	sv, _ := insertSorted(g.adj[v], u)
	g.adj[v] = sv
	g.edges++
	return nil
}

// HasEdge reports whether the edge {u,v} exists.
func (g *Graph) HasEdge(u, v int64) bool {
	s := g.adj[u]
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// Neighbors returns u's neighbor list in ascending order. The returned
// slice is owned by the graph and must not be modified.
func (g *Graph) Neighbors(u int64) []int64 { return g.adj[u] }

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int64) int { return len(g.adj[u]) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Nodes returns all node IDs in ascending order.
func (g *Graph) Nodes() []int64 {
	out := make([]int64, 0, len(g.adj))
	for u := range g.adj {
		out = append(out, u)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges calls fn once per undirected edge with u < v, in ascending
// (u, v) order — deterministic, so edge-order-sensitive consumers
// (persisted snapshots, partial-graph sampling, table emitters) are
// byte-identical across runs. It stops early if fn returns false.
func (g *Graph) Edges(fn func(u, v int64) bool) {
	for _, u := range g.Nodes() {
		for _, v := range g.adj[u] {
			if u < v {
				if !fn(u, v) {
					return
				}
			}
		}
	}
}

// CommonNeighbors returns the number of common neighbors of u and v,
// exploiting the sorted neighbor lists.
func (g *Graph) CommonNeighbors(u, v int64) int {
	a, b := g.adj[u], g.adj[v]
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			n++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return n
}

// Subgraph returns the subgraph induced by the node set keep.
func (g *Graph) Subgraph(keep map[int64]bool) *Graph {
	sub := NewWithCapacity(len(keep))
	for u := range keep {
		if g.HasNode(u) {
			sub.AddNode(u)
		}
	}
	for u := range keep {
		for _, v := range g.adj[u] {
			if u < v && keep[v] {
				sub.AddEdge(u, v) //nolint:errcheck // u!=v by construction
			}
		}
	}
	return sub
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := NewWithCapacity(len(g.adj))
	for u, ns := range g.adj {
		c.adj[u] = append([]int64(nil), ns...)
	}
	c.edges = g.edges
	return c
}

// RemoveEdge deletes the undirected edge {u,v} if present, reporting
// whether an edge was removed.
func (g *Graph) RemoveEdge(u, v int64) bool {
	rm := func(s []int64, x int64) ([]int64, bool) {
		i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
		if i < len(s) && s[i] == x {
			return append(s[:i], s[i+1:]...), true
		}
		return s, false
	}
	su, ok := rm(g.adj[u], v)
	if !ok {
		return false
	}
	g.adj[u] = su
	sv, _ := rm(g.adj[v], u)
	g.adj[v] = sv
	g.edges--
	return true
}

// Components returns the connected components of g as slices of node
// IDs, largest first. Node order inside a component is ascending.
func (g *Graph) Components() [][]int64 {
	seen := make(map[int64]bool, len(g.adj))
	var comps [][]int64
	for u := range g.adj {
		if seen[u] {
			continue
		}
		var comp []int64
		stack := []int64{u}
		seen[u] = true
		for len(stack) > 0 {
			x := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, x)
			for _, v := range g.adj[x] {
				if !seen[v] {
					seen[v] = true
					stack = append(stack, v)
				}
			}
		}
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		comps = append(comps, comp)
	}
	sort.Slice(comps, func(i, j int) bool {
		if len(comps[i]) != len(comps[j]) {
			return len(comps[i]) > len(comps[j])
		}
		return comps[i][0] < comps[j][0]
	})
	return comps
}

// LargestComponent returns the node set of the largest connected
// component (empty map for an empty graph).
func (g *Graph) LargestComponent() map[int64]bool {
	comps := g.Components()
	out := make(map[int64]bool)
	if len(comps) == 0 {
		return out
	}
	for _, u := range comps[0] {
		out[u] = true
	}
	return out
}

// volume returns sum of degrees over the node set.
func (g *Graph) volume(set map[int64]bool) int {
	var vol int
	for u := range set {
		vol += len(g.adj[u])
	}
	return vol
}

// CutConductance returns the conductance of the cut (S, V\S) per Eq. 1
// of the paper: crossing-edge count divided by min(vol(S), vol(V\S)).
// It returns 0 when either side has zero volume.
func (g *Graph) CutConductance(s map[int64]bool) float64 {
	volS := g.volume(s)
	volAll := 2 * g.edges
	volComp := volAll - volS
	den := volS
	if volComp < den {
		den = volComp
	}
	if den == 0 {
		return 0
	}
	var crossing int
	for u := range s {
		for _, v := range g.adj[u] {
			if !s[v] {
				crossing++
			}
		}
	}
	return float64(crossing) / float64(den)
}

// ExactConductance computes min-cut conductance by enumerating all
// 2^(n-1) proper cuts. It is exponential and intended for tests and
// tiny illustrative graphs; it returns an error above maxNodes.
func (g *Graph) ExactConductance(maxNodes int) (float64, error) {
	nodes := g.Nodes()
	n := len(nodes)
	if n > maxNodes {
		return 0, fmt.Errorf("graph: %d nodes exceeds brute-force limit %d", n, maxNodes)
	}
	if n < 2 || g.edges == 0 {
		return 0, fmt.Errorf("graph: conductance undefined for n=%d, m=%d", n, g.edges)
	}
	best := -1.0
	s := make(map[int64]bool, n)
	// Fix node 0 on one side to halve the enumeration.
	for mask := 1; mask < 1<<(n-1); mask++ {
		for k := range s {
			delete(s, k)
		}
		for b := 0; b < n-1; b++ {
			if mask&(1<<b) != 0 {
				s[nodes[b+1]] = true
			}
		}
		phi := g.CutConductance(s)
		if phi == 0 {
			continue // degenerate side (zero volume)
		}
		if best < 0 || phi < best {
			best = phi
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("graph: no proper cut found")
	}
	return best, nil
}

// Modularity returns Newman's modularity Q of the node partition given
// as a community label per node. Nodes absent from labels form no
// community and contribute nothing.
func (g *Graph) Modularity(labels map[int64]int) float64 {
	m2 := float64(2 * g.edges)
	if m2 == 0 {
		return 0
	}
	intra := make(map[int]float64) // edges inside community (doubled)
	degSum := make(map[int]float64)
	// Iterate nodes in sorted order: keyed float accumulation under raw
	// map iteration would make low-order bits (and hence emitted table
	// cells) vary run to run.
	for _, u := range g.Nodes() {
		cu, ok := labels[u]
		if !ok {
			continue
		}
		ns := g.adj[u]
		degSum[cu] += float64(len(ns))
		for _, v := range ns {
			if cv, ok := labels[v]; ok && cv == cu {
				intra[cu]++
			}
		}
	}
	comms := make([]int, 0, len(degSum))
	for c := range degSum {
		comms = append(comms, c)
	}
	sort.Ints(comms)
	var q float64
	for _, c := range comms {
		d := degSum[c]
		q += intra[c]/m2 - (d/m2)*(d/m2)
	}
	return q
}

// AvgDegree returns the mean degree (0 for empty graph).
func (g *Graph) AvgDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// DegreeHistogram returns degree -> node count.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for _, ns := range g.adj {
		h[len(ns)]++
	}
	return h
}
