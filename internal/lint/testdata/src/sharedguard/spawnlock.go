package sharedguard

import "sync"

type slBox struct {
	mu sync.Mutex
	n  int
}

// spawnLockClean: two distinct spawn sites whose bodies both take the
// mutex before writing — consistent lockset, no finding.
func spawnLockClean() int {
	b := &slBox{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		b.n++
		b.mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		b.mu.Lock()
		defer b.mu.Unlock()
		b.n++
	}()
	wg.Wait()
	return b.n
}

// spawnLockMixed: one spawned body locks, the other writes bare — the
// locksets share nothing, so the discipline is inconsistent.
func spawnLockMixed() int {
	b := &slBox{}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		b.mu.Lock()
		b.n++ // want "reachable from multiple goroutines"
		b.mu.Unlock()
	}()
	go func() {
		defer wg.Done()
		b.n++
	}()
	wg.Wait()
	return b.n
}
