package lint_test

import (
	"go/ast"
	"sort"
	"strings"
	"testing"

	"mba/internal/lint"
)

// The solver tests use a toy may-analysis over mark("label") calls: the
// state is the set of labels on some path before (forward) or after
// (backward) a program point. It exercises join, loop convergence, and
// edge refinement without any type information or analyzer machinery.

type markSet struct{ m map[string]bool }

func newMarkSet() *markSet { return &markSet{m: map[string]bool{}} }

func (s *markSet) Clone() lint.FlowState {
	c := newMarkSet()
	for k := range s.m {
		c.m[k] = true
	}
	return c
}

func (s *markSet) JoinFrom(src lint.FlowState) bool {
	o := src.(*markSet)
	changed := false
	for k := range o.m {
		if !s.m[k] {
			s.m[k] = true
			changed = true
		}
	}
	return changed
}

func (s *markSet) labels() []string {
	out := make([]string, 0, len(s.m))
	for k := range s.m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type markAnalysis struct{ dir lint.FlowDirection }

func (a *markAnalysis) Direction() lint.FlowDirection { return a.dir }
func (a *markAnalysis) Boundary() lint.FlowState      { return newMarkSet() }

func (a *markAnalysis) Transfer(n ast.Node, st lint.FlowState) lint.FlowState {
	s := st.(*markSet)
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "mark" && len(call.Args) == 1 {
			if bl, ok := call.Args[0].(*ast.BasicLit); ok {
				s.m[strings.Trim(bl.Value, `"`)] = true
			}
		}
		return true
	})
	return s
}

// refinedMarks additionally records the branch direction taken on edges
// guarded by the bare identifier `cond`, modeling path sensitivity.
type refinedMarks struct{ markAnalysis }

func (a *refinedMarks) RefineEdge(e *lint.Edge, st lint.FlowState) lint.FlowState {
	s := st.(*markSet)
	if id, ok := e.Cond.(*ast.Ident); ok && id.Name == "cond" {
		if e.Branch {
			s.m["cond=true"] = true
		} else {
			s.m["cond=false"] = true
		}
	}
	return s
}

func wantLabels(t *testing.T, st lint.FlowState, want ...string) {
	t.Helper()
	if st == nil {
		t.Fatalf("state is nil, want labels %v", want)
	}
	got := st.(*markSet).labels()
	if len(got) != len(want) {
		t.Fatalf("labels = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("labels = %v, want %v", got, want)
		}
	}
}

func TestSolveForwardJoin(t *testing.T) {
	c := cfgOf(t, `
func f(ok bool) {
	if ok {
		mark("then")
	} else {
		mark("else")
	}
	mark("after")
}`)
	sol := lint.SolveDataflow(c, &markAnalysis{dir: lint.FlowForward})
	after := blockMarked(t, c, "after")
	// Both branches join at the after block: its entry state is the
	// union, neither branch alone.
	wantLabels(t, sol.In[after], "else", "then")
	wantLabels(t, sol.Out[after], "after", "else", "then")
	wantLabels(t, sol.In[blockMarked(t, c, "then")])
	wantLabels(t, sol.In[c.Entry])
}

func TestSolveLoopConvergence(t *testing.T) {
	c := cfgOf(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark("body")
	}
	mark("after")
}`)
	sol := lint.SolveDataflow(c, &markAnalysis{dir: lint.FlowForward})
	after := blockMarked(t, c, "after")
	// The loop may run: its mark must flow around the back edge and out
	// of the loop; the solver must still terminate (this test finishing
	// is the convergence check).
	wantLabels(t, sol.In[after], "body")
}

func TestSolveBackward(t *testing.T) {
	c := cfgOf(t, `
func f() {
	mark("a")
	mark("b")
}`)
	sol := lint.SolveDataflow(c, &markAnalysis{dir: lint.FlowBackward})
	// Backward: In[b] holds the state at block ENTRY (everything still
	// ahead), Out[b] the state at block exit.
	wantLabels(t, sol.In[c.Entry], "a", "b")
	wantLabels(t, sol.Out[c.Entry])
	wantLabels(t, sol.In[c.Exit])
}

func TestSolveBackwardBranches(t *testing.T) {
	c := cfgOf(t, `
func f(ok bool) {
	mark("pre")
	if ok {
		mark("then")
	} else {
		mark("else")
	}
}`)
	sol := lint.SolveDataflow(c, &markAnalysis{dir: lint.FlowBackward})
	// Before the branch, both arms are still possible futures.
	wantLabels(t, sol.In[c.Entry], "else", "pre", "then")
	then := blockMarked(t, c, "then")
	wantLabels(t, sol.In[then], "then")
	wantLabels(t, sol.Out[then])
}

func TestSolveEdgeRefinement(t *testing.T) {
	c := cfgOf(t, `
func f(cond bool) {
	if cond {
		mark("then")
	} else {
		mark("else")
	}
}`)
	sol := lint.SolveDataflow(c, &refinedMarks{markAnalysis{dir: lint.FlowForward}})
	// Each arm sees only its own branch fact: refinement applies to the
	// edge, not the join.
	wantLabels(t, sol.In[blockMarked(t, c, "then")], "cond=true")
	wantLabels(t, sol.In[blockMarked(t, c, "else")], "cond=false")
}

func TestSolveUnreachableBlocksStayNil(t *testing.T) {
	c := cfgOf(t, `
func f() int {
	return 1
	mark("dead")
}`)
	sol := lint.SolveDataflow(c, &markAnalysis{dir: lint.FlowForward})
	dead := blockMarked(t, c, "dead")
	if sol.In[dead] != nil || sol.Out[dead] != nil {
		t.Error("unreachable block has non-nil states")
	}
	if sol.In[c.Exit] == nil {
		t.Error("Exit never reached")
	}
}
