package experiments

import (
	"fmt"

	"mba/internal/levelgraph"
	"mba/internal/query"
	"mba/internal/workload"
)

// Table2 reproduces the paper's Table 2: statistics of the
// term-induced and level-by-level subgraphs for seven keywords —
// largest-connected-component recall, the average number of common
// neighbors at the endpoints of intra-level versus other edges, and
// the percentage of intra- and cross-level edges (at the experiment
// interval, 1 day as in the paper's running example).
func Table2(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "table2",
		Title: "Statistics: term-induced & level-by-level subgraphs",
		Columns: []string{
			"Keyword", "Recall", "AvgCommonNbrs(intra)", "AvgCommonNbrs(other)", "%intra", "%cross",
		},
	}
	for _, kw := range workload.Table2Keywords() {
		opts.logf("table2: %s", kw)
		sub, err := p.TermSubgraph(kw)
		if err != nil {
			return Table{}, err
		}
		casc := p.Cascade(kw)
		recall := 0.0
		if sub.NumNodes() > 0 {
			recall = float64(len(sub.LargestComponent())) / float64(sub.NumNodes())
		}
		var intraCN, otherCN, intraN, otherN float64
		st := levelgraph.Analyze(sub, casc.First, opts.Interval)
		sub.Edges(func(u, v int64) bool {
			cn := float64(sub.CommonNeighbors(u, v))
			lu := levelgraph.LevelOf(casc.First[u], opts.Interval)
			lv := levelgraph.LevelOf(casc.First[v], opts.Interval)
			if levelgraph.Classify(lu, lv) == levelgraph.Intra {
				intraCN += cn
				intraN++
			} else {
				otherCN += cn
				otherN++
			}
			return true
		})
		avg := func(sum, n float64) string {
			if n == 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f", sum/n)
		}
		t.Rows = append(t.Rows, []string{
			kw,
			fmt.Sprintf("%.0f%%", 100*recall),
			avg(intraCN, intraN),
			avg(otherCN, otherN),
			fmt.Sprintf("%.0f%%", 100*st.IntraFrac()),
			fmt.Sprintf("%.0f%%", 100*st.CrossFrac()),
		})
	}
	return t, nil
}

// Table3 reproduces the paper's Table 3: the average percentage
// query-cost improvement of MA-TARW over MA-SRW (for AVG(followers)
// and COUNT) and over the M&R baseline (COUNT), at 5% relative error,
// across seven keywords.
func Table3(opts Options) (Table, error) {
	opts = opts.withDefaults()
	p, err := workload.Get(opts.Scale)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "table3",
		Title: "Average % query-cost improvement of MA-TARW (at 5% error)",
		Columns: []string{
			"Keyword", "vs MA-SRW (AVG)", "vs MA-SRW (COUNT)", "vs M&R (COUNT)",
		},
	}
	const target = 0.05
	curve := func(algo Algo, q query.Query, truth float64) (int, error) {
		o := opts
		o.Errors = []float64{target}
		budget := opts.Budget
		if q.Agg == query.Count {
			budget *= 2 // COUNT needs mark-and-recapture collisions
		}
		spec := runSpec{algo: algo, q: q, interval: opts.Interval, budget: budget}
		if algo == MATARW {
			spec = tarwSpec(q, spec.preset, o)
			spec.budget = budget
		}
		costs, err := costCurve(p, spec, truth, o)
		if err != nil {
			return -1, err
		}
		return costs[0], nil
	}
	improvement := func(base, tarw int) string {
		// Unreached bounds are conservatively treated as costing the
		// full budget.
		if base < 0 {
			base = opts.Budget
		}
		if tarw < 0 {
			tarw = opts.Budget
		}
		if base == 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f", 100*float64(base-tarw)/float64(base))
	}
	for _, kw := range workload.Table3Keywords() {
		opts.logf("table3: %s", kw)
		qAvg := query.AvgQuery(kw, query.Followers)
		qCnt := query.CountQuery(kw)
		truthAvg, err := p.GroundTruth(qAvg)
		if err != nil {
			return Table{}, err
		}
		truthCnt, err := p.GroundTruth(qCnt)
		if err != nil {
			return Table{}, err
		}
		srwAvg, err := curve(MASRW, qAvg, truthAvg)
		if err != nil {
			return Table{}, err
		}
		tarwAvg, err := curve(MATARW, qAvg, truthAvg)
		if err != nil {
			return Table{}, err
		}
		srwCnt, err := curve(MASRW, qCnt, truthCnt)
		if err != nil {
			return Table{}, err
		}
		tarwCnt, err := curve(MATARW, qCnt, truthCnt)
		if err != nil {
			return Table{}, err
		}
		mrCnt, err := curve(MR, qCnt, truthCnt)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			kw,
			improvement(srwAvg, tarwAvg),
			improvement(srwCnt, tarwCnt),
			improvement(mrCnt, tarwCnt),
		})
	}
	return t, nil
}
