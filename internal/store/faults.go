package store

import (
	"math/rand"
	"sync"
)

// FaultConfig parameterizes the seed-deterministic storage fault
// injector. Probabilities are per-operation; the same seed over the
// same operation sequence reproduces the same faults.
type FaultConfig struct {
	// Seed drives the injector's RNG.
	Seed int64
	// TornWriteProb is the probability a WriteFile persists only a
	// prefix of the data (simulated power loss mid-write).
	TornWriteProb float64
	// BitFlipProb is the probability a WriteFile lands with one bit
	// flipped somewhere in the data (silent media corruption).
	BitFlipProb float64
	// DropRenameProb is the probability a Rename is silently dropped:
	// the call reports success but the destination never appears —
	// the caller believes the save landed when it did not.
	DropRenameProb float64
}

// FaultStats counts the faults the injector actually delivered.
type FaultStats struct {
	TornWrites   int
	BitFlips     int
	DropRenames  int
	CleanWrites  int
	CleanRenames int
}

// FaultFS wraps an FS with seed-deterministic storage faults. Reads
// pass through untouched — damage happens on the write path, exactly
// where real storage loses data. Goroutine-safe.
type FaultFS struct {
	inner FS
	cfg   FaultConfig

	mu    sync.Mutex
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultFS wraps inner with the configured fault behavior.
func NewFaultFS(inner FS, cfg FaultConfig) *FaultFS {
	return &FaultFS{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns the faults delivered so far.
func (f *FaultFS) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// ReadFile implements FS (pass-through).
func (f *FaultFS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

// Remove implements FS (pass-through).
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// WriteFile implements FS, possibly tearing or bit-flipping the data
// before it reaches the inner FS. A torn write persists a strict
// prefix; a bit flip corrupts one payload byte. Either way the call
// reports success — corruption is only discoverable by reading back.
func (f *FaultFS) WriteFile(name string, data []byte) error {
	f.mu.Lock()
	torn := f.rng.Float64() < f.cfg.TornWriteProb
	flip := !torn && f.rng.Float64() < f.cfg.BitFlipProb
	var cut, off int
	var bit byte
	if torn && len(data) > 0 {
		cut = f.rng.Intn(len(data))
		f.stats.TornWrites++
	} else if flip && len(data) > 0 {
		off = f.rng.Intn(len(data))
		bit = 1 << uint(f.rng.Intn(8))
		f.stats.BitFlips++
	} else {
		f.stats.CleanWrites++
	}
	f.mu.Unlock()

	if torn && len(data) > 0 {
		return f.inner.WriteFile(name, data[:cut])
	}
	if flip && len(data) > 0 {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= bit
		return f.inner.WriteFile(name, mutated)
	}
	return f.inner.WriteFile(name, data)
}

// Rename implements FS, possibly dropping the rename entirely: the
// temp file evaporates, the destination keeps its old content (or
// stays absent), and the caller still sees success — the most
// treacherous storage lie, which the A/B rotation must absorb as a
// missing newest generation.
func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	drop := f.rng.Float64() < f.cfg.DropRenameProb
	if drop {
		f.stats.DropRenames++
	} else {
		f.stats.CleanRenames++
	}
	f.mu.Unlock()

	if drop {
		_ = f.inner.Remove(oldname)
		return nil
	}
	return f.inner.Rename(oldname, newname)
}
