package audit

import (
	"math"

	"mba/internal/core"
	"mba/internal/store"
)

// CheckDurability verifies the crash harness's recovery laws against
// an uninterrupted reference run:
//
//   - bit-identity: the final estimate of the crashed-and-recovered
//     lineage must equal the uninterrupted run's to the last IEEE-754
//     bit, and cost, samples, and charged calls must match exactly —
//     recovery is replay, not approximation;
//   - repayment accounting: every crash→recovery trial repays exactly
//     the calls that postdate its recovered generation (Repaid =
//     CrashClock − ResumeClock ≥ 0), and the recovered clock never
//     exceeds the last durably saved clock;
//   - fault-free losslessness: with no injected storage fault, every
//     recovery resumes at the precise clock of the last save — zero
//     loss events, zero corrupt slots, zero fallbacks, zero scratch
//     restarts;
//   - fault attribution: when storage faults were injected, every
//     loss event traces to one (LossEvents == FaultsInjected), and
//     each checksum-detected slot is accounted.
//
// zeroRepaid additionally asserts the sweep's strongest claim: when
// crash points align with autosave boundaries, not a single call is
// repaid across the whole lineage.
func (a Auditor) CheckDurability(base core.Result, rec store.Recovery, zeroRepaid bool) *Report {
	r := &Report{}

	r.check()
	sameBits := math.Float64bits(base.Estimate) == math.Float64bits(rec.Final.Estimate) ||
		(math.IsNaN(base.Estimate) && math.IsNaN(rec.Final.Estimate))
	if !sameBits {
		r.failf("durability-bit-identity", "recovered estimate %v (bits %x) != uninterrupted %v (bits %x)",
			rec.Final.Estimate, math.Float64bits(rec.Final.Estimate),
			base.Estimate, math.Float64bits(base.Estimate))
	}
	r.check()
	if rec.Final.Cost != base.Cost {
		r.failf("durability-bit-identity", "recovered cost %d != uninterrupted %d", rec.Final.Cost, base.Cost)
	}
	r.check()
	if rec.Final.Samples != base.Samples {
		r.failf("durability-bit-identity", "recovered samples %d != uninterrupted %d", rec.Final.Samples, base.Samples)
	}
	r.check()
	if rec.Final.Stats.Calls != base.Stats.Calls {
		r.failf("durability-bit-identity", "recovered charged calls %d != uninterrupted %d",
			rec.Final.Stats.Calls, base.Stats.Calls)
	}

	r.check()
	if rec.Restarts != len(rec.Trials) {
		r.failf("recovery-accounting", "%d restarts but %d recovery trials", rec.Restarts, len(rec.Trials))
	}
	losses := 0
	for i, tr := range rec.Trials {
		r.check()
		if tr.Repaid != tr.CrashClock-tr.ResumeClock || tr.Repaid < 0 {
			r.failf("recovery-accounting", "trial %d: repaid %d, crash clock %d, resume clock %d",
				i, tr.Repaid, tr.CrashClock, tr.ResumeClock)
		}
		r.check()
		if tr.ResumeClock > tr.SavedClock || tr.SavedClock > tr.CrashClock {
			r.failf("recovery-accounting", "trial %d: clocks must order resume(%d) <= saved(%d) <= crash(%d)",
				i, tr.ResumeClock, tr.SavedClock, tr.CrashClock)
		}
		if tr.ResumeClock < tr.SavedClock {
			losses++
		}
		r.check()
		if zeroRepaid && tr.Repaid != 0 {
			r.failf("zero-repaid", "trial %d: repaid %d calls despite save-aligned crash at clock %d",
				i, tr.Repaid, tr.CrashClock)
		}
	}
	r.check()
	if losses != rec.LossEvents {
		r.failf("recovery-accounting", "counted %d losing trials but LossEvents=%d", losses, rec.LossEvents)
	}

	if rec.FaultsInjected == 0 {
		r.check()
		if rec.LossEvents != 0 || rec.ScratchRestarts != 0 || rec.CorruptSlots != 0 || rec.Fallbacks != 0 {
			r.failf("fault-free-lossless",
				"no faults injected yet losses=%d scratch=%d corrupt=%d fallbacks=%d",
				rec.LossEvents, rec.ScratchRestarts, rec.CorruptSlots, rec.Fallbacks)
		}
		for i, tr := range rec.Trials {
			r.check()
			if tr.ResumeClock != tr.SavedClock {
				r.failf("fault-free-lossless", "trial %d: resumed at %d, last save was %d, with no fault injected",
					i, tr.ResumeClock, tr.SavedClock)
			}
		}
	} else {
		r.check()
		if rec.LossEvents != rec.FaultsInjected {
			r.failf("fault-attribution", "%d storage faults injected but %d loss events — every fault must be detected and cost exactly one fallback",
				rec.FaultsInjected, rec.LossEvents)
		}
		r.check()
		if rec.Fallbacks > rec.CorruptSlots {
			r.failf("fault-attribution", "%d fallbacks exceed %d checksum-detected slots", rec.Fallbacks, rec.CorruptSlots)
		}
	}
	return r
}
