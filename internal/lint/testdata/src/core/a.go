// Package core is a budgetsafe fixture: its basename puts it in the
// analyzer's forbidden set, like the real mba/internal/core.
package core

import "api"

type session struct {
	srv    *api.Server
	client *api.Client
}

func (s *session) violations(u int64) {
	s.srv.Search("privacy")            // want "direct api.Server.Search bypasses Client cost accounting"
	_, _, _ = s.srv.Connections(u)     // want "direct api.Server.Connections bypasses Client cost accounting"
	tl, cost, err := s.srv.Timeline(u) // want "direct api.Server.Timeline bypasses Client cost accounting"
	_, _, _ = tl, cost, err
}

func (s *session) idiomatic(u int64) error {
	if _, err := s.client.Search("privacy"); err != nil {
		return err
	}
	if _, err := s.client.Connections(u); err != nil {
		return err
	}
	tl, err := s.client.Timeline(u)
	_ = tl
	// Uncharged Server metadata is fine.
	_ = s.srv.Preset()
	return err
}
