// Package mba is MICROBLOG-ANALYZER: aggregate estimation over a
// rate-limited microblog platform, reproducing Thirumuruganathan,
// Zhang, Hristidis & Das, "Aggregate Estimation Over a Microblog
// Platform" (SIGMOD 2014).
//
// The library answers queries of the form
//
//	SELECT AGGR(f(u)) FROM users WHERE timeline CONTAINS keyword [AND ...]
//
// using only the three access paths real microblog APIs expose —
// keyword search over recent posts, user connections, and user
// timelines — and it counts every API call, because the paper's entire
// point is answering such queries under strict rate limits.
//
// Two estimation algorithms are provided:
//
//   - MASRW (Algorithm 1): a simple random walk over the level-by-level
//     subgraph — the term-induced subgraph with intra-level edges
//     removed (§4 of the paper);
//   - MATARW (Algorithms 2–3): the topology-aware bottom-top-bottom walk
//     whose per-node visit probabilities are estimated unbiasedly,
//     enabling Hansen–Hurwitz estimation of SUM/COUNT without
//     mark-and-recapture or burn-in (§5).
//
// Because no live platform is reachable from a test rig (and the
// paper's 2013 Twitter data no longer exists), the package bundles a
// full synthetic microblog platform — social graph with communities,
// keyword cascades, profiles, timelines, and per-platform API paging
// presets for Twitter, Google+ and Tumblr. See DESIGN.md for the
// simulation fidelity argument and EXPERIMENTS.md for the reproduced
// tables and figures.
//
// Quickstart:
//
//	p, _ := mba.NewPlatform(mba.DefaultPlatformConfig())
//	est, _ := p.Estimate(mba.Avg("privacy", mba.Followers), mba.Options{Budget: 20000})
//	fmt.Printf("AVG(followers) ≈ %.1f after %d API calls\n", est.Value, est.Cost)
package mba

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"mba/internal/api"
	"mba/internal/core"
	"mba/internal/fleet"
	"mba/internal/model"
	"mba/internal/platform"
	"mba/internal/query"
	"mba/internal/store"
)

// Algorithm selects the estimation algorithm.
type Algorithm int

// Estimation algorithms.
const (
	// MATARW is the paper's headline algorithm (topology-aware random
	// walk, Algorithms 2–3) and the default.
	MATARW Algorithm = iota
	// MASRW is Algorithm 1 (simple random walk over the level-by-level
	// subgraph).
	MASRW
	// MR is the mark-and-recapture COUNT baseline the paper compares
	// against.
	MR
)

func (a Algorithm) String() string {
	switch a {
	case MATARW:
		return "MA-TARW"
	case MASRW:
		return "MA-SRW"
	case MR:
		return "M&R"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// APIPreset selects the simulated platform interface parameters.
type APIPreset int

// Platform presets (page sizes, search windows and rate limits of §6).
const (
	Twitter APIPreset = iota
	GPlus
	Tumblr
)

func (p APIPreset) preset() api.Preset {
	switch p {
	case GPlus:
		return api.GPlus()
	case Tumblr:
		return api.Tumblr()
	default:
		return api.Twitter()
	}
}

// Measure is a numeric per-user measure f(u).
type Measure = query.Measure

// Built-in measures (see the paper's §6 aggregates).
var (
	Followers            = query.Followers
	DisplayNameLength    = query.DisplayNameLength
	Age                  = query.Age
	KeywordPostCount     = query.KeywordPostCount
	KeywordPostLikes     = query.KeywordPostLikes
	KeywordPostMeanLikes = query.KeywordPostMeanLikes
)

// Query is an aggregate estimation request.
type Query = query.Query

// Count returns COUNT(users whose timeline mentions keyword).
func Count(keyword string) Query { return query.CountQuery(keyword) }

// Avg returns AVG(m) over users whose timeline mentions keyword.
func Avg(keyword string, m Measure) Query { return query.AvgQuery(keyword, m) }

// Sum returns SUM(m) over users whose timeline mentions keyword.
func Sum(keyword string, m Measure) Query { return query.SumQuery(keyword, m) }

// MaleOnly restricts a query to profiles exposing male gender
// (Figure 13's predicate).
var MaleOnly = query.MaleOnly

// TimeWindow restricts the keyword mentions considered to simulation
// days [fromDay, toDay).
func TimeWindow(q Query, fromDay, toDay int) Query {
	q.Window = model.Window{From: model.Tick(fromDay) * model.Day, To: model.Tick(toDay) * model.Day}
	return q
}

// PlatformConfig configures the simulated microblog platform. It is an
// alias of the internal configuration type; see its field docs.
type PlatformConfig = platform.Config

// KeywordConfig configures one simulated keyword cascade.
type KeywordConfig = platform.KeywordConfig

// DefaultPlatformConfig returns a mid-sized platform tracking the
// paper's three figure keywords (privacy, new york, boston).
func DefaultPlatformConfig() PlatformConfig { return platform.DefaultConfig() }

// Platform is a simulated microblog service with exact ground truth.
type Platform struct {
	sim *platform.Platform
}

// NewPlatform generates a simulated platform (deterministic in the
// config, including its Seed).
func NewPlatform(cfg PlatformConfig) (*Platform, error) {
	sim, err := platform.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Platform{sim: sim}, nil
}

// WrapPlatform adopts an already-generated internal platform (used by
// the benchmark harness to share workload fixtures).
func WrapPlatform(sim *platform.Platform) *Platform { return &Platform{sim: sim} }

// Sim exposes the underlying simulator for advanced analyses.
func (p *Platform) Sim() *platform.Platform { return p.sim }

// GroundTruth computes the exact aggregate answer from the full
// simulated store (the role the streaming API plays in the paper).
func (p *Platform) GroundTruth(q Query) (float64, error) { return p.sim.GroundTruth(q) }

// Options tunes one estimation run.
type Options struct {
	// Algorithm defaults to MATARW.
	Algorithm Algorithm
	// Preset defaults to Twitter.
	Preset APIPreset
	// Budget is the maximum number of API calls (0 = a generous default
	// of 50000).
	Budget int
	// IntervalHours fixes the level-by-level time interval T; 0 lets
	// MA-TARW pick it with pilot walks (§4.2.3) and gives MA-SRW the
	// paper's running-example default of one day.
	IntervalHours int
	// Seed derandomizes the walk (0 = fixed default).
	Seed int64
	// PrivateUserFraction and TransientErrorRate inject API faults.
	PrivateUserFraction float64
	TransientErrorRate  float64
	// RateLimitErrorRate injects 429-style rejections; the client waits
	// them out in virtual time instead of spending budget.
	RateLimitErrorRate float64
	// ChurnRate enables platform churn: the expected number of churn
	// events (account deletions, privacy flips, edge changes, post
	// deletions) applied per API call served, deterministic in Seed.
	// Walks self-heal through churn instead of aborting; see
	// Estimate.Healed for how much healing a run needed.
	ChurnRate float64
	// Walkers, when positive, runs the estimate as a concurrent walker
	// fleet: the budget is split across a fixed set of independent
	// logical walkers (eight) by a shared budget ledger, and Walkers
	// goroutines execute them. Because the logical plan is fixed,
	// Walkers only changes wall-clock time: the same seed and budget
	// produce a bit-identical Value at Walkers=1 and Walkers=8.
	// 0 keeps the original single-walker path.
	Walkers int
	// Cooperative, with Walkers > 0, switches throttled walkers from
	// blocking out their rate-limit windows to parking: a 429'd walker
	// yields its execution slot and re-enters the fleet's run queue when
	// the window reopens in virtual time, so siblings keep the slots
	// busy. Fault-free runs are bit-identical to blocking mode; under
	// rate-limit faults the fleet's Makespan collapses while per-walker
	// virtual time stays the same.
	Cooperative bool
	// Deadline, when positive, bounds the run in virtual platform time
	// (the clock VirtualDuration reports). A run past its deadline is
	// cancelled at the next API call and returns a Degraded partial
	// estimate — never a hang, and deterministic because the clock is
	// virtual.
	Deadline time.Duration
	// Ctx, when non-nil, propagates caller cancellation into every
	// pending API call; a cancelled run returns a Degraded partial
	// estimate.
	Ctx context.Context
	// Checkpoint, when non-empty, names a directory for durable
	// crash-safe checkpoints: the run autosaves its progress there
	// (versioned, checksummed, atomically rotated A/B generations), and
	// a later call with the same options resumes from the newest intact
	// generation instead of re-spending the budget — a completed run
	// returns its stored result at zero API cost. Resuming under
	// different options fails with ErrCheckpointMismatch.
	Checkpoint string
	// AutosaveCalls is the durable autosave cadence in charged API
	// calls (default 1000 when Checkpoint is set). The fleet path
	// ignores it: fleets persist every unit after every scheduler turn.
	AutosaveCalls int
}

// Estimate is an aggregate estimation result.
type Estimate struct {
	// Value is the estimated aggregate (NaN if the budget was too small
	// to produce any estimate).
	Value float64
	// Cost is the number of API calls spent.
	Cost int
	// Samples is the number of walk samples or walk instances used.
	Samples int
	// VirtualDuration is how long the run would take on the real
	// platform under its published rate limit, including virtual waits
	// the retry policy accrued (backoff, rate-limit windows).
	VirtualDuration time.Duration
	// Trajectory records (cost, estimate) convergence points.
	Trajectory []TrajectoryPoint
	// Degraded is true when unrecoverable API faults interrupted the run
	// faster than Estimate could resume it (checkpoint resumes are
	// automatic while budget remains) and Value is the partial estimate
	// collected up to that point (Cost stays truthful).
	Degraded bool
	// Retries and RateLimitHits quantify the resilience overhead the
	// run paid on top of Cost.
	Retries       int
	RateLimitHits int
	// Healed counts the self-healing events (backtracks, reseeds,
	// skipped walks) the run needed to survive platform churn, and
	// VanishedSeen the churned-away accounts it observed. Both are zero
	// when ChurnRate is zero.
	Healed       int
	VanishedSeen int
	// WalkersRun and WalkersShed report the fleet's logical plan when
	// Options.Walkers > 0: how many independent walkers the budget was
	// split across and how many the arbiter shed because the budget
	// could not sustain them. Zero on the single-walker path.
	WalkersRun  int
	WalkersShed int
	// WatchdogTrips counts stall-watchdog firings: walkers cancelled
	// and reseeded after accruing too much virtual wait without budget
	// progress. Zero unless the fleet path armed the watchdog.
	WatchdogTrips int
	// ThrottleWait is the share of the run's virtual waits booked
	// against rate-limit windows (429 backoff); the rest of the wait is
	// transient-retry backoff and call latency.
	ThrottleWait time.Duration
	// Makespan is the fleet's end-to-end virtual wall-clock when its
	// walkers share Options.Walkers execution slots: with Cooperative
	// walkers, parked rate-limit waits overlap instead of holding
	// slots, so Makespan collapses toward the busy time while
	// VirtualDuration (per-walker elapsed) is unchanged. Zero on the
	// single-walker path.
	Makespan time.Duration
	// Parks counts cooperative throttle parks (walkers yielding their
	// slot for a rate-limit window) and DrainedSteps the free
	// warm-cache steps park-resumed walkers recovered. Both zero
	// without Cooperative.
	Parks        int
	DrainedSteps int
	// Restarts counts how many prior interrupted runs this result
	// inherited through the durable checkpoint lineage, and
	// RecoveredCost the API calls those runs had already spent —
	// budget this run did not have to repay. CheckpointSaves is the
	// number of durable generations this run wrote. All zero unless
	// Options.Checkpoint is set.
	Restarts        int
	RecoveredCost   int
	CheckpointSaves int
}

// TrajectoryPoint is one convergence sample.
type TrajectoryPoint struct {
	Cost     int
	Estimate float64
}

// ErrNoEstimate is returned when the budget was exhausted before any
// estimate could be formed.
var ErrNoEstimate = errors.New("mba: budget exhausted before an estimate was available")

// Durable-checkpoint failure modes, re-exported from the store layer
// so callers can branch with errors.Is without importing internals.
var (
	// ErrCheckpointMismatch reports an intact durable checkpoint that
	// belongs to a different plan (algorithm, query, seed, walkers,
	// fault profile, or schema version) than the resuming options.
	ErrCheckpointMismatch = store.ErrCheckpointMismatch
	// ErrCorruptCheckpoint reports that checkpoint data exists but no
	// generation survived checksum validation.
	ErrCorruptCheckpoint = store.ErrCorruptCheckpoint
)

// walkFor builds the per-segment walk runner for the selected
// algorithm. The seed is a parameter (the fleet derives one per
// walker); ctx threads caller cancellation into the walk; pol, when
// armed, autosaves checkpoints to the durable store as the walk runs
// (the fleet path passes the zero policy and persists per-unit
// instead).
func walkFor(o Options, q Query, pol core.AutosavePolicy) fleet.WalkFn {
	return func(ctx context.Context, session *core.Session, seed int64, ck *core.Checkpoint) (core.Result, error) {
		switch o.Algorithm {
		case MASRW:
			return core.RunSRW(session, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx, Autosave: pol})
		case MR:
			return core.RunMR(session, core.SRWOptions{View: core.LevelView, Seed: seed, Resume: ck, Ctx: ctx, Autosave: pol})
		default:
			tarw := core.TARWOptions{
				Seed:           seed,
				SelectInterval: o.IntervalHours == 0,
				Resume:         ck,
				Ctx:            ctx,
				Autosave:       pol,
			}
			if q.Agg != query.Avg {
				// COUNT/SUM need the full cross-level lattice for support and
				// a loose winsorization so the Hansen–Hurwitz mass survives;
				// AVG prefers the well-conditioned adjacent-level profile.
				tarw.AllowCrossLevel = true
				tarw.WeightClip = 100
				tarw.PEstimates = 5
			}
			return core.RunTARW(session, tarw)
		}
	}
}

// planKey pins a durable checkpoint to the logical run these options
// describe; any drift fails the resume with ErrCheckpointMismatch.
func (o Options) planKey(q Query, units int) store.PlanKey {
	faults := ""
	if o.PrivateUserFraction != 0 || o.TransientErrorRate != 0 || o.RateLimitErrorRate != 0 {
		faults = fmt.Sprintf("priv=%g transient=%g ratelimit=%g",
			o.PrivateUserFraction, o.TransientErrorRate, o.RateLimitErrorRate)
	}
	return store.PlanKey{
		Algo:          o.Algorithm.String(),
		Preset:        o.Preset.preset().Name,
		Query:         q.String(),
		Seed:          o.Seed,
		Units:         units,
		IntervalHours: o.IntervalHours,
		ChurnRate:     o.ChurnRate,
		Faults:        faults,
		Cooperative:   o.Cooperative,
	}
}

// loadCheckpoint opens the durable store and returns the newest
// stored snapshot after validating it against the plan. A missing
// checkpoint returns (st, nil, nil): start fresh and save into st.
func loadCheckpoint(dir string, plan store.PlanKey) (*store.Store, *store.Snapshot, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	snap, err := st.Load()
	if err != nil {
		if errors.Is(err, store.ErrNoCheckpoint) {
			return st, nil, nil
		}
		return nil, nil, err
	}
	if err := snap.Plan.Check(plan); err != nil {
		return nil, nil, err
	}
	return st, snap, nil
}

// estimateFromSummary rebuilds a completed run's Estimate from its
// durable summary — the stored-result fast path, costing zero API
// calls. The convergence trajectory is not persisted.
func estimateFromSummary(sum store.RunSummary, preset api.Preset, restarts int) (Estimate, error) {
	virtual := time.Duration(sum.VirtualNs)
	if virtual == 0 {
		virtual = api.VirtualOf(preset, sum.Stats)
	}
	est := Estimate{
		Value:           sum.Estimate(),
		Cost:            sum.Cost,
		Samples:         sum.Samples,
		VirtualDuration: virtual,
		Degraded:        sum.Degraded,
		Retries:         sum.Stats.Retries,
		RateLimitHits:   sum.Stats.RateLimitHits,
		Healed:          sum.Heal.Events(),
		VanishedSeen:    sum.Heal.VanishedUsers,
		ThrottleWait:    sum.Stats.ThrottleWait,
		WalkersRun:      sum.WalkersRun,
		WalkersShed:     sum.WalkersShed,
		WatchdogTrips:   sum.WatchdogTrips,
		Makespan:        time.Duration(sum.MakespanNs),
		Parks:           sum.Parks,
		DrainedSteps:    sum.DrainedSteps,
		Restarts:        restarts,
		RecoveredCost:   sum.Cost,
	}
	if math.IsNaN(est.Value) {
		return est, ErrNoEstimate
	}
	return est, nil
}

// Estimate answers an aggregate query through the simulated
// rate-limited API using the selected algorithm.
func (p *Platform) Estimate(q Query, o Options) (Estimate, error) {
	if o.Budget == 0 {
		o.Budget = 50000
	}
	interval := model.Tick(o.IntervalHours)
	if interval <= 0 {
		interval = model.Day
	}
	if o.Walkers > 0 {
		return p.estimateFleet(q, o, interval)
	}
	preset := o.Preset.preset()

	// Durable-checkpoint plumbing: load the newest intact generation,
	// branch on what it holds (finished run → stored result; partial →
	// resume), and arm the autosave policy for the run below.
	var (
		st        *store.Store
		plan      store.PlanKey
		resumeCk  *core.Checkpoint
		restarts  int
		recovered int
		pol       core.AutosavePolicy
	)
	if o.Checkpoint != "" {
		plan = o.planKey(q, 0)
		var snap *store.Snapshot
		var err error
		st, snap, err = loadCheckpoint(o.Checkpoint, plan)
		if err != nil {
			return Estimate{}, err
		}
		if snap != nil {
			if snap.Final != nil {
				return estimateFromSummary(*snap.Final, preset, snap.Restarts)
			}
			if snap.Walk != nil {
				resumeCk, err = core.CheckpointFromState(*snap.Walk)
				if err != nil {
					return Estimate{}, err
				}
				restarts = snap.Restarts + 1
				recovered = resumeCk.SpentCost()
			}
		}
		if recovered >= o.Budget {
			// Everything budgeted is already spent durably; a zero-budget
			// client would mean "unlimited", so refuse to run instead.
			return Estimate{Value: math.NaN(), Cost: recovered, Restarts: restarts, RecoveredCost: recovered},
				ErrNoEstimate
		}
		saveCalls := o.AutosaveCalls
		if saveCalls <= 0 {
			saveCalls = 1000
		}
		pol = core.AutosavePolicy{EveryCalls: saveCalls, Save: func(ck *core.Checkpoint) error {
			ws := ck.State()
			return st.Save(&store.Snapshot{Plan: plan, Restarts: restarts, RecoveredCost: recovered, Walk: &ws})
		}}
	}
	srv := api.NewServer(p.sim, preset, api.Faults{
		PrivateProb:   o.PrivateUserFraction,
		TransientProb: o.TransientErrorRate,
		RateLimitProb: o.RateLimitErrorRate,
		Seed:          o.Seed,
	})
	if o.ChurnRate > 0 {
		srv.EnableChurn(platform.ChurnConfig{Rate: o.ChurnRate, Seed: o.Seed})
	}
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	runOnce := walkFor(o, q, pol)

	client := api.NewClient(srv, o.Budget-recovered)
	client.Deadline = o.Deadline
	if o.Deadline > 0 && resumeCk != nil {
		// The resumed run already accrued virtual time on prior clients;
		// re-arm the fresh one with the remaining headroom only.
		left := o.Deadline - api.VirtualOf(preset, resumeCk.SpentStats())
		if left <= 0 {
			return Estimate{Value: math.NaN(), Cost: recovered, Restarts: restarts, RecoveredCost: recovered},
				ErrNoEstimate
		}
		client.Deadline = left
	}
	client.WithContext(ctx)
	session, err := core.NewSession(client, q, interval)
	if err != nil {
		return Estimate{}, err
	}
	res, err := runOnce(ctx, session, o.Seed, resumeCk)
	if err != nil {
		return Estimate{}, err
	}
	// Ride faults out: while an unrecoverable fault degraded the run and
	// budget remains, resume from the checkpoint on a fresh client —
	// cached responses replay at zero cost, so spent calls are never
	// repaid. Bounded in case the platform never recovers. Cancellation
	// and deadline exceedance are terminal: resuming past them would
	// overrun the caller's bound.
	for resumes := 0; res.Degraded && res.Cost < o.Budget && resumes < 100; resumes++ {
		if errors.Is(res.DegradedBy, api.ErrCanceled) || errors.Is(res.DegradedBy, api.ErrDeadlineExceeded) {
			break
		}
		client = api.NewClient(srv, o.Budget-res.Cost)
		if o.Deadline > 0 {
			// A fresh client starts with zero accrued virtual time, so
			// re-arm it with whatever deadline headroom remains.
			left := o.Deadline - api.VirtualOf(preset, res.Stats)
			if left <= 0 {
				break
			}
			client.Deadline = left
		}
		client.WithContext(ctx)
		session, err = core.NewSession(client, q, interval)
		if err != nil {
			break
		}
		prev := res
		res, err = runOnce(ctx, session, o.Seed, prev.Checkpoint)
		if err != nil {
			return Estimate{}, err
		}
		if res.Cost <= prev.Cost && res.Samples <= prev.Samples {
			break // no progress; report the degraded partial result
		}
	}
	// Virtual duration from the cumulative accounting (the last client
	// alone only saw the final segment).
	virtual := api.VirtualOf(preset, res.Stats)
	est := Estimate{
		Value:           res.Estimate,
		Cost:            res.Cost,
		Samples:         res.Samples,
		VirtualDuration: virtual,
		Degraded:        res.Degraded,
		Retries:         res.Stats.Retries,
		RateLimitHits:   res.Stats.RateLimitHits,
		Healed:          res.Heal.Events(),
		VanishedSeen:    res.Heal.VanishedUsers,
		ThrottleWait:    res.Stats.ThrottleWait,
	}
	for _, pt := range res.Trajectory {
		est.Trajectory = append(est.Trajectory, TrajectoryPoint{Cost: pt.Cost, Estimate: pt.Estimate})
	}
	if st != nil {
		// Seal the lineage: a completed run (clean, or with nothing left
		// to spend) stores its final summary so the next call answers
		// from disk; a degraded run with budget remaining stores only
		// the checkpoint so the next call resumes it.
		snap := &store.Snapshot{Plan: plan, Restarts: restarts, RecoveredCost: recovered}
		if res.Checkpoint != nil {
			ws := res.Checkpoint.State()
			snap.Walk = &ws
		}
		if !res.Degraded || res.Cost >= o.Budget {
			sum := store.SummaryOf(res)
			snap.Final = &sum
		}
		if err := st.Save(snap); err != nil {
			return est, fmt.Errorf("mba: final checkpoint save failed: %w", err)
		}
		est.Restarts = restarts
		est.RecoveredCost = recovered
		est.CheckpointSaves = st.Stats().Saves
	}
	if est.Value != est.Value { // NaN
		return est, ErrNoEstimate
	}
	return est, nil
}

// estimateFleet runs the estimate as a concurrent walker fleet: a
// fixed plan of independent logical walkers sharing the budget through
// a ledger, executed by o.Walkers goroutines. The logical plan is
// independent of o.Walkers, so the estimate is bit-identical at any
// parallelism.
func (p *Platform) estimateFleet(q Query, o Options, interval model.Tick) (Estimate, error) {
	ctx := o.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	preset := o.Preset.preset()
	// Arm the stall watchdog at four rate-limit windows of virtual wait
	// without a single charged call — far beyond any healthy walker's
	// backoff, so it only fires on genuinely wedged ones.
	stall := 4 * preset.RateLimitWindow
	if stall <= 0 {
		stall = time.Hour
	}
	cfg := fleet.Config{
		Platform: p.sim,
		Preset:   preset,
		Faults: api.Faults{
			PrivateProb:   o.PrivateUserFraction,
			TransientProb: o.TransientErrorRate,
			RateLimitProb: o.RateLimitErrorRate,
		},
		Churn:       platform.ChurnConfig{Rate: o.ChurnRate},
		Query:       q,
		Interval:    interval,
		Walk:        walkFor(o, q, core.AutosavePolicy{}),
		Budget:      o.Budget,
		Seed:        o.Seed,
		Parallelism: o.Walkers,
		Cooperative: o.Cooperative,
		Deadline:    o.Deadline,
		StallWait:   stall,
	}

	// Durable-checkpoint plumbing: the fleet persists every unit's
	// cumulative state after every scheduler turn through a FleetSaver,
	// and resumes interrupted flights unit-by-unit.
	var (
		st        *store.Store
		saver     *store.FleetSaver
		plan      store.PlanKey
		restarts  int
		recovered int
	)
	if o.Checkpoint != "" {
		plan = o.planKey(q, cfg.PlannedUnits())
		var snap *store.Snapshot
		var err error
		st, snap, err = loadCheckpoint(o.Checkpoint, plan)
		if err != nil {
			return Estimate{}, err
		}
		if snap != nil {
			if snap.Final != nil {
				return estimateFromSummary(*snap.Final, preset, snap.Restarts)
			}
			if snap.Fleet != nil {
				cfg.Resume, err = fleet.CheckpointFromState(*snap.Fleet)
				if err != nil {
					return Estimate{}, err
				}
				restarts = snap.Restarts + 1
				for _, u := range snap.Fleet.Units {
					recovered += u.Cost
				}
			}
		}
		if recovered >= o.Budget {
			return Estimate{Value: math.NaN(), Cost: recovered, Restarts: restarts, RecoveredCost: recovered},
				ErrNoEstimate
		}
		saver = store.NewFleetSaver(st, plan, cfg.PlannedUnits())
		cfg.Autosave = saver.Save
	}

	res, err := fleet.Run(ctx, cfg)
	if err != nil {
		return Estimate{}, err
	}
	est := Estimate{
		Value:           res.Estimate,
		Cost:            res.Cost,
		Samples:         res.Samples,
		VirtualDuration: res.VirtualDuration,
		Degraded:        res.Degraded,
		Retries:         res.Stats.Retries,
		RateLimitHits:   res.Stats.RateLimitHits,
		Healed:          res.Heal.Events(),
		VanishedSeen:    res.Heal.VanishedUsers,
		WalkersRun:      res.UnitsRun,
		WalkersShed:     res.Shed,
		WatchdogTrips:   res.WatchdogTrips,
		ThrottleWait:    res.Stats.ThrottleWait,
		Makespan:        res.Makespan,
		Parks:           res.Parks,
		DrainedSteps:    res.DrainedSteps,
	}
	if st != nil {
		if serr := saver.Err(); serr != nil {
			return est, fmt.Errorf("mba: fleet checkpoint save failed: %w", serr)
		}
		snap := &store.Snapshot{Plan: plan, Restarts: restarts, RecoveredCost: recovered}
		if res.Checkpoint != nil {
			fs := res.Checkpoint.State()
			snap.Fleet = &fs
		}
		if !res.Degraded || res.Cost >= o.Budget {
			sum := store.RunSummary{
				EstimateBits:  math.Float64bits(res.Estimate),
				Cost:          res.Cost,
				Samples:       res.Samples,
				Stats:         res.Stats,
				Heal:          res.Heal,
				Degraded:      res.Degraded,
				VirtualNs:     int64(res.VirtualDuration),
				WalkersRun:    res.UnitsRun,
				WalkersShed:   res.Shed,
				WatchdogTrips: res.WatchdogTrips,
				MakespanNs:    int64(res.Makespan),
				Parks:         res.Parks,
				DrainedSteps:  res.DrainedSteps,
			}
			snap.Final = &sum
		}
		if err := st.Save(snap); err != nil {
			return est, fmt.Errorf("mba: final checkpoint save failed: %w", err)
		}
		est.Restarts = restarts
		est.RecoveredCost = recovered
		est.CheckpointSaves = st.Stats().Saves
	}
	if est.Value != est.Value { // NaN
		return est, ErrNoEstimate
	}
	return est, nil
}
