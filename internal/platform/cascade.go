package platform

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"

	"mba/internal/model"
)

// Spike is a temporary multiplier on the exogenous mention rate, used
// to model events like the Boston Marathon bombing spike in Fig. 7.
type Spike struct {
	Day          int
	DurationDays int
	Multiplier   float64
}

// KeywordConfig parameterizes one keyword cascade.
type KeywordConfig struct {
	// Name is the keyword itself.
	Name string
	// SeedsPerDay is the baseline exogenous first-mention rate.
	SeedsPerDay float64
	// Spikes boost SeedsPerDay temporarily.
	Spikes []Spike
	// StartDay/EndDay bound the active period (defaults: whole horizon).
	StartDay, EndDay int
	// AffinityFrac is the fraction of communities with high topical
	// affinity for this keyword; adoption concentrates there, creating
	// the topical clustering §4.1 observes ("users who have similar
	// interests tend to be connected and use the same keywords").
	AffinityFrac float64
	// InterestHigh/InterestLow are per-user interest probabilities in
	// high/low affinity communities. Only interested users can adopt.
	InterestHigh, InterestLow float64
	// AdoptProb is the per-edge contagion probability onto an
	// interested neighbor.
	AdoptProb float64
	// Reaction times are drawn once per user as a three-component
	// exponential mixture: FastFrac of users react within the hour
	// (retweet-like immediacy — the paper cites 92% of retweets
	// arriving within 1 hour; these users create intra-level edges),
	// MidFrac react within days (adjacent-level edges), and the rest
	// pick the topic up weeks later (cross-level edges and the long
	// temporal chains that keep the level DAG connected down to the
	// search window). Making the delay per-user rather than per-edge
	// avoids whole communities first-mentioning on the same day, which
	// would make nearly every edge intra-level — the paper's Table 2
	// observes only 22–32% intra-level edges at T = 1 day.
	FastFrac, MidFrac                             float64
	FastDelayMeanH, MidDelayMeanH, SlowDelayMeanH float64
	// RepeatMentionMean is the Poisson mean of additional mentions a
	// user posts after the first.
	RepeatMentionMean float64
	// BurstRate is the Poisson mean of community attention bursts per
	// high-affinity community over the active period: a news event
	// reaches the community and every interested, not-yet-adopted
	// member first-mentions that same day with probability
	// BurstAdoptProb. Bursts recreate the paper's Table 2 observation
	// that intra-level (same-bucket) edges connect tightly clustered
	// users with many common neighbors.
	BurstRate      float64
	BurstAdoptProb float64
}

func (k KeywordConfig) withDefaults(horizonDays int) KeywordConfig {
	if k.EndDay == 0 {
		k.EndDay = horizonDays
	}
	if k.AffinityFrac == 0 {
		k.AffinityFrac = 0.15
	}
	if k.InterestHigh == 0 {
		k.InterestHigh = 0.5
	}
	if k.InterestLow == 0 {
		k.InterestLow = 0.02
	}
	if k.AdoptProb == 0 {
		k.AdoptProb = 0.22
	}
	if k.FastFrac == 0 {
		k.FastFrac = 0.25
	}
	if k.MidFrac == 0 {
		k.MidFrac = 0.35
	}
	if k.FastDelayMeanH == 0 {
		k.FastDelayMeanH = 0.5
	}
	if k.MidDelayMeanH == 0 {
		k.MidDelayMeanH = 48
	}
	if k.SlowDelayMeanH == 0 {
		k.SlowDelayMeanH = 1500
	}
	if k.RepeatMentionMean == 0 {
		k.RepeatMentionMean = 2
	}
	if k.BurstRate == 0 {
		k.BurstRate = 2.5
	}
	if k.BurstAdoptProb == 0 {
		k.BurstAdoptProb = 0.6
	}
	return k
}

func (k KeywordConfig) validate() error {
	if k.Name == "" {
		return fmt.Errorf("platform: keyword config with empty name")
	}
	if k.SeedsPerDay <= 0 {
		return fmt.Errorf("platform: keyword %q needs SeedsPerDay > 0", k.Name)
	}
	if k.StartDay < 0 || k.EndDay <= k.StartDay {
		return fmt.Errorf("platform: keyword %q has invalid active period [%d,%d)", k.Name, k.StartDay, k.EndDay)
	}
	return nil
}

// KeywordPrivacy models the paper's low-frequency keyword with
// occasional spikes (e.g., the Snowden revelations).
func KeywordPrivacy() KeywordConfig {
	return KeywordConfig{
		Name:        "privacy",
		SeedsPerDay: 2.5,
		Spikes: []Spike{
			{Day: 155, DurationDays: 10, Multiplier: 8}, // early June leak
			{Day: 240, DurationDays: 5, Multiplier: 4},
		},
		AffinityFrac: 0.2,
		InterestHigh: 0.6,
	}
}

// KeywordNewYork models a perpetually popular high-frequency keyword.
func KeywordNewYork() KeywordConfig {
	return KeywordConfig{
		Name:         "new york",
		SeedsPerDay:  6,
		AffinityFrac: 0.35,
		InterestHigh: 0.55,
	}
}

// KeywordBoston models a medium-frequency keyword with one singular
// spike (the Apr 15, 2013 Marathon bombing, day 104).
func KeywordBoston() KeywordConfig {
	return KeywordConfig{
		Name:        "boston",
		SeedsPerDay: 1.8,
		Spikes: []Spike{
			{Day: 104, DurationDays: 7, Multiplier: 25},
		},
		AffinityFrac: 0.2,
	}
}

// adoptionEvent is a pending "user may first-mention at time t" event.
type adoptionEvent struct {
	t model.Tick
	u int64
}

type eventQueue []adoptionEvent

func (q eventQueue) Len() int            { return len(q) }
func (q eventQueue) Less(i, j int) bool  { return q[i].t < q[j].t }
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(adoptionEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// poisson draws from a Poisson distribution (Knuth's method; fine for
// the small means used here).
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k
		}
	}
}

// rateAt returns the exogenous seed rate on a given day.
func (k KeywordConfig) rateAt(day int) float64 {
	if day < k.StartDay || day >= k.EndDay {
		return 0
	}
	r := k.SeedsPerDay
	for _, s := range k.Spikes {
		if day >= s.Day && day < s.Day+s.DurationDays {
			r *= s.Multiplier
		}
	}
	return r
}

// simulateCascade runs the contagion process for one keyword and
// returns the resulting first-mention times and keyword posts.
func simulateCascade(rng *rand.Rand, p *Platform, k KeywordConfig) *Cascade {
	n := len(p.Users)
	horizon := p.Horizon

	// Topical interest: communities draw affinity, users draw interest.
	numComm := p.cfg.NumCommunities
	highAffinity := make([]bool, numComm)
	for c := range highAffinity {
		if rng.Float64() < k.AffinityFrac {
			highAffinity[c] = true
		}
	}
	interested := make([]bool, n)
	var interestedList []int64
	for u := 0; u < n; u++ {
		prob := k.InterestLow
		if highAffinity[p.Users[u].Community] {
			prob = k.InterestHigh
		}
		if rng.Float64() < prob {
			interested[u] = true
			interestedList = append(interestedList, int64(u))
		}
	}
	if len(interestedList) == 0 {
		// Degenerate affinity draw; fall back to a uniform handful so the
		// cascade is never empty.
		for i := 0; i < 10 && i < n; i++ {
			u := int64(rng.Intn(n))
			interested[u] = true
			interestedList = append(interestedList, u)
		}
	}

	// Exogenous seed events: spontaneous mentions come from topically
	// interested users, which concentrates the term-induced subgraph in
	// well-connected communities (the paper's high-recall observation).
	var q eventQueue
	for day := k.StartDay; day < k.EndDay && day < p.cfg.HorizonDays; day++ {
		count := poisson(rng, k.rateAt(day))
		for i := 0; i < count; i++ {
			u := interestedList[rng.Intn(len(interestedList))]
			t := model.Tick(day)*model.Day + model.Tick(rng.Intn(24))
			heap.Push(&q, adoptionEvent{t: t, u: u})
		}
	}

	// Community attention bursts (see the BurstRate field docs).
	activeDays := k.EndDay - k.StartDay
	if activeDays > p.cfg.HorizonDays-k.StartDay {
		activeDays = p.cfg.HorizonDays - k.StartDay
	}
	// Bursts are local: an epicenter user's post storms through its
	// immediate neighborhood within the day (a retweet-burst), so the
	// same-day cohort shares the epicenter — and each other — as common
	// neighbors, reproducing Table 2's clustering of intra-level edges.
	// Burst days follow the exogenous rate profile: news events that
	// spike the seed rate also trigger attention storms.
	var dayWeights []float64
	var totalWeight float64
	for day := k.StartDay; day < k.EndDay && day < p.cfg.HorizonDays; day++ {
		w := k.rateAt(day)
		dayWeights = append(dayWeights, w)
		totalWeight += w
	}
	burstDay := func() int {
		if totalWeight <= 0 {
			return k.StartDay
		}
		x := rng.Float64() * totalWeight
		for i, w := range dayWeights {
			x -= w
			if x <= 0 {
				return k.StartDay + i
			}
		}
		return k.StartDay + len(dayWeights) - 1
	}
	interestedByComm := make([][]int64, numComm)
	for _, u := range interestedList {
		c := p.Users[u].Community
		interestedByComm[c] = append(interestedByComm[c], u)
	}
	for c := 0; c < numComm; c++ {
		members := interestedByComm[c]
		if !highAffinity[c] || activeDays <= 0 || len(members) == 0 {
			continue
		}
		bursts := poisson(rng, k.BurstRate)
		for b := 0; b < bursts; b++ {
			day := burstDay()
			epicenter := members[rng.Intn(len(members))]
			hour := model.Tick(rng.Intn(12))
			at := model.Tick(day)*model.Day + hour
			heap.Push(&q, adoptionEvent{t: at, u: epicenter})
			// The storm reaches the epicenter's community neighborhood up
			// to two hops out, forming a dense same-day ball.
			cohort := map[int64]bool{epicenter: true}
			frontier := []int64{epicenter}
			for hop := 0; hop < 2; hop++ {
				var next []int64
				for _, w := range frontier {
					for _, v := range p.Social.Neighbors(w) {
						if cohort[v] || !interested[v] || p.Users[v].Community != c {
							continue
						}
						if rng.Float64() >= k.BurstAdoptProb {
							continue
						}
						cohort[v] = true
						next = append(next, v)
						// Within the same day, minutes-to-hours later.
						dt := model.Tick(rng.Intn(int(24 - hour)))
						heap.Push(&q, adoptionEvent{t: at + dt, u: v})
					}
				}
				frontier = next
			}
		}
	}
	heap.Init(&q)

	casc := &Cascade{
		Keyword: k.Name,
		First:   make(map[int64]model.Tick),
		Posts:   make(map[int64][]model.Post),
	}

	// reaction draws a user's personal pick-up latency (see the
	// KeywordConfig field docs for why this is per-user).
	reaction := func() model.Tick {
		var delayH float64
		switch x := rng.Float64(); {
		case x < k.FastFrac:
			delayH = rng.ExpFloat64() * k.FastDelayMeanH
		case x < k.FastFrac+k.MidFrac:
			delayH = rng.ExpFloat64() * k.MidDelayMeanH
		default:
			delayH = rng.ExpFloat64() * k.SlowDelayMeanH
		}
		d := model.Tick(delayH)
		if d < 1 {
			d = 1 // mentions propagate strictly forward in time
		}
		return d
	}

	scheduled := make(map[int64]bool, n)
	for q.Len() > 0 {
		ev := heap.Pop(&q).(adoptionEvent)
		if ev.t >= horizon {
			continue
		}
		if _, done := casc.First[ev.u]; done {
			continue
		}
		casc.First[ev.u] = ev.t
		casc.Posts[ev.u] = makeKeywordPosts(rng, p, k, ev.u, ev.t, horizon)

		// Contagion onto interested, not-yet-adopted neighbors. The
		// first successful exposure schedules the neighbor; its personal
		// reaction time dominates the adoption delay.
		for _, v := range p.Social.Neighbors(ev.u) {
			if _, done := casc.First[v]; done {
				continue
			}
			if scheduled[v] || !interested[v] {
				continue
			}
			if rng.Float64() >= k.AdoptProb {
				continue
			}
			t := ev.t + reaction()
			if t < horizon {
				scheduled[v] = true
				heap.Push(&q, adoptionEvent{t: t, u: v})
			}
		}
	}
	return casc
}

// makeKeywordPosts builds user u's keyword posts: the first mention at
// time t plus Poisson(RepeatMentionMean) later mentions. Per-post likes
// scale with the author's follower count (heavy-tailed).
func makeKeywordPosts(rng *rand.Rand, p *Platform, k KeywordConfig, u int64, t, horizon model.Tick) []model.Post {
	mkPost := func(at model.Tick) model.Post {
		likes := int(rng.ExpFloat64() * (1 + float64(p.Users[u].Profile.Followers)*0.02))
		return model.Post{
			Author:  u,
			Time:    at,
			Keyword: k.Name,
			Likes:   likes,
			Length:  20 + rng.Intn(120),
		}
	}
	posts := []model.Post{mkPost(t)}
	repeats := poisson(rng, k.RepeatMentionMean)
	span := float64(horizon - t)
	for i := 0; i < repeats; i++ {
		dt := model.Tick(rng.Float64() * span)
		if dt < 1 {
			dt = 1
		}
		at := t + dt
		if at < horizon {
			posts = append(posts, mkPost(at))
		}
	}
	// Keep oldest-first order; repeats may be unordered between
	// themselves, so sort the tail.
	for i := 1; i < len(posts); i++ {
		for j := i; j > 1 && posts[j].Time < posts[j-1].Time; j-- {
			posts[j], posts[j-1] = posts[j-1], posts[j]
		}
	}
	return posts
}
