// Command mba-lint runs the mba-lint analyzer suite (internal/lint):
// six domain-invariant checkers that keep the paper-level claims
// mechanically true — seed-determinism, single-path budget accounting,
// virtual time, checked budget errors, deterministic map iteration,
// and compensated float summation.
//
// Standalone (lints the whole module, from any directory inside it):
//
//	mba-lint ./...
//	mba-lint -only norawrand,floatsum ./...
//	mba-lint -list
//
// As a go vet backend (per-package, types from export data):
//
//	go build -o bin/mba-lint ./cmd/mba-lint
//	go vet -vettool=$PWD/bin/mba-lint ./...
//
// Exit status is 1 when diagnostics are reported, 2 on usage or load
// errors. Diagnostics can be suppressed line-by-line with
// `//lint:ignore <analyzer> reason`.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mba/internal/lint"
)

func main() {
	// go vet probes its tool with -V=full (version stamp) and -flags
	// (JSON list of tool flags it may forward) before handing it
	// package config files; answer both protocol calls before flag
	// parsing. We expose no vet-forwardable flags.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("mba-lint version 1 (suite: %s)\n", strings.Join(analyzerNames(), ","))
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	var (
		only = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		list = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mba-lint [-only a,b] [-list] [./...]\n       (as vet tool) go vet -vettool=$(command -v mba-lint) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers, err := selectAnalyzers(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		os.Exit(2)
	}

	// vet protocol: a single *.cfg argument describes one package.
	if args := flag.Args(); len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVet(analyzers, args[0]))
	}
	os.Exit(runStandalone(analyzers))
}

func analyzerNames() []string {
	var names []string
	for _, a := range lint.All() {
		names = append(names, a.Name)
	}
	return names
}

func selectAnalyzers(only string) ([]*lint.Analyzer, error) {
	if only == "" {
		return lint.All(), nil
	}
	var out []*lint.Analyzer
	for _, name := range strings.Split(only, ",") {
		name = strings.TrimSpace(name)
		a := lint.ByName(name)
		if a == nil {
			return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// runStandalone lints every package of the enclosing module.
func runStandalone(analyzers []*lint.Analyzer) int {
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	loader, err := lint.NewModuleLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	diags, err := lint.RunAll(analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mba-lint:", err)
		return 2
	}
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: %s (%s)\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "mba-lint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above working directory")
		}
		dir = parent
	}
}
