package core

import (
	"fmt"
	"sort"

	"mba/internal/api"
	"mba/internal/model"
)

// CheckpointState is the serializable form of a Checkpoint, consumed
// by the durable store (internal/store). The in-memory checkpoint
// keeps unexported fields and map-shaped caches; this DTO exports
// every field and flattens the ESTIMATE-p maps into slices sorted by
// node ID, so encoding the same checkpoint always yields the same
// bytes (the store checksums them) and decoding rebuilds state whose
// resumed run is indistinguishable from resuming the original.
type CheckpointState struct {
	Algo         string                 `json:"algo"`
	Segments     int                    `json:"segments"`
	PriorCost    int                    `json:"prior_cost"`
	PriorStats   api.Stats              `json:"prior_stats"`
	PriorHeal    HealStats              `json:"prior_heal"`
	PriorDrained int                    `json:"prior_drained,omitempty"`
	Interval     model.Tick             `json:"interval,omitempty"`
	Cache        api.CacheSnapshotState `json:"cache"`
	Breaker      api.BreakerState       `json:"breaker"`
	Traj         []Point                `json:"traj,omitempty"`

	// MA-SRW / M&R state.
	Chain   []ChainSample `json:"chain,omitempty"`
	Cur     int64         `json:"cur,omitempty"`
	HaveCur bool          `json:"have_cur,omitempty"`
	Parked  bool          `json:"parked,omitempty"`

	// MA-TARW state.
	SumEsts   []float64    `json:"sum_ests,omitempty"`
	CntEsts   []float64    `json:"cnt_ests,omitempty"`
	SeedEsts  []float64    `json:"seed_ests,omitempty"`
	ZeroPaths int          `json:"zero_paths,omitempty"`
	PUp       []PStatEntry `json:"p_up,omitempty"`
	PDown     []PStatEntry `json:"p_down,omitempty"`
}

// ChainSample is one serialized SRW chain entry.
type ChainSample struct {
	U      int64   `json:"u"`
	Degree int     `json:"degree"`
	Match  bool    `json:"match,omitempty"`
	Value  float64 `json:"value,omitempty"`
}

// PStatEntry is one serialized ESTIMATE-p accumulator.
type PStatEntry struct {
	ID  int64   `json:"id"`
	Sum float64 `json:"sum"`
	N   int     `json:"n"`
}

// State converts the checkpoint into its deterministic serializable
// form.
func (ck *Checkpoint) State() CheckpointState {
	st := CheckpointState{
		Algo:         ck.algo,
		Segments:     ck.segments,
		PriorCost:    ck.priorCost,
		PriorStats:   ck.priorStats,
		PriorHeal:    ck.priorHeal,
		PriorDrained: ck.priorDrained,
		Interval:     ck.interval,
		Cache:        ck.cache.State(),
		Breaker:      ck.breaker,
		Traj:         ck.traj,
		Cur:          ck.cur,
		HaveCur:      ck.haveCur,
		Parked:       ck.parked,
		SumEsts:      ck.sumEsts,
		CntEsts:      ck.cntEsts,
		SeedEsts:     ck.seedEsts,
		ZeroPaths:    ck.zeroPaths,
		PUp:          pStatsToState(ck.pUp),
		PDown:        pStatsToState(ck.pDown),
	}
	for _, c := range ck.chain {
		st.Chain = append(st.Chain, ChainSample{U: c.u, Degree: c.degree, Match: c.match, Value: c.value})
	}
	return st
}

// CheckpointFromState rebuilds a checkpoint from its serialized form.
// The algorithm family must be one the runners know how to resume.
func CheckpointFromState(st CheckpointState) (*Checkpoint, error) {
	if st.Algo != algoSRW && st.Algo != algoTARW {
		return nil, fmt.Errorf("core: unknown checkpoint algo %q", st.Algo)
	}
	ck := &Checkpoint{
		algo:         st.Algo,
		segments:     st.Segments,
		priorCost:    st.PriorCost,
		priorStats:   st.PriorStats,
		priorHeal:    st.PriorHeal,
		priorDrained: st.PriorDrained,
		interval:     st.Interval,
		cache:        api.CacheSnapshotFromState(st.Cache),
		breaker:      st.Breaker,
		traj:         st.Traj,
		cur:          st.Cur,
		haveCur:      st.HaveCur,
		parked:       st.Parked,
		sumEsts:      st.SumEsts,
		cntEsts:      st.CntEsts,
		seedEsts:     st.SeedEsts,
		zeroPaths:    st.ZeroPaths,
	}
	for _, c := range st.Chain {
		ck.chain = append(ck.chain, srwSample{u: c.U, degree: c.Degree, match: c.Match, value: c.Value})
	}
	if st.Algo == algoTARW || len(st.PUp) > 0 || len(st.PDown) > 0 {
		ck.pUp = pStatsFromState(st.PUp)
		ck.pDown = pStatsFromState(st.PDown)
	}
	return ck, nil
}

// Rebase derives a replay checkpoint: the spent-cost books, response
// cache, interval, and breaker state survive, but the walk state
// (chain, position, per-walk estimates, probability caches) and the
// segment counter are dropped. Resuming from a rebased checkpoint
// replays the entire run from step zero with the segment-0 RNG — the
// warm cache answers the already-paid prefix at zero charge, so the
// replay reproduces the uninterrupted run's draws, samples, and final
// estimate bit for bit while still never repaying spent budget. This
// is what makes crash recovery provably lossless on a fault-free
// platform: heal and drained counters reset too, because the replay
// re-observes them from scratch.
func (ck *Checkpoint) Rebase() *Checkpoint {
	return &Checkpoint{
		algo:       ck.algo,
		segments:   0,
		priorCost:  ck.priorCost,
		priorStats: ck.priorStats,
		interval:   ck.interval,
		cache:      ck.cache,
		breaker:    ck.breaker,
	}
}

// pStatsToState flattens an ESTIMATE-p cache into a slice sorted by
// node ID.
func pStatsToState(m map[int64]*pStat) []PStatEntry {
	if len(m) == 0 {
		return nil
	}
	ids := make([]int64, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([]PStatEntry, 0, len(ids))
	for _, id := range ids {
		st := m[id]
		out = append(out, PStatEntry{ID: id, Sum: st.sum, N: st.n})
	}
	return out
}

// pStatsFromState rebuilds an ESTIMATE-p cache.
func pStatsFromState(entries []PStatEntry) map[int64]*pStat {
	out := make(map[int64]*pStat, len(entries))
	for _, e := range entries {
		out[e.ID] = &pStat{sum: e.Sum, n: e.N}
	}
	return out
}
